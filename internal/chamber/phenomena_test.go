package chamber

import (
	"math"
	"testing"

	"biochip/internal/units"
)

func TestDebyeLengthNanometreScale(t *testing.T) {
	// Low-conductivity buffer: λD in the tens of nanometres; saline:
	// sub-nanometre-to-nanometre.
	lBuffer := DebyeLength(0.03, units.RoomTemp)
	lSaline := DebyeLength(1.5, units.RoomTemp)
	if lBuffer < 1*units.Nanometer || lBuffer > 100*units.Nanometer {
		t.Errorf("buffer Debye length %s implausible", units.Format(lBuffer, "m"))
	}
	if lSaline >= lBuffer {
		t.Error("higher conductivity must shrink the double layer")
	}
	if !math.IsInf(DebyeLength(0, 293), 1) {
		t.Error("zero conductivity should give +Inf")
	}
}

func TestACEOPeaksAtOmegaOne(t *testing.T) {
	sigma, relPerm, scale := 0.03, units.WaterRelPermittivity, 20*units.Micron
	lD := DebyeLength(sigma, units.RoomTemp)
	fPeak := ACEOPeakFrequency(sigma, relPerm, scale, lD)
	if fPeak <= 0 {
		t.Fatal("no peak frequency")
	}
	uPeak := ACElectroosmosisVelocity(3.3, fPeak, sigma, relPerm, units.WaterViscosity, scale, lD)
	for _, mul := range []float64{0.1, 10} {
		u := ACElectroosmosisVelocity(3.3, fPeak*mul, sigma, relPerm, units.WaterViscosity, scale, lD)
		if u >= uPeak {
			t.Errorf("ACEO at %gx peak frequency (%g) should be below peak (%g)", mul, u, uPeak)
		}
	}
	// Vanishes toward DC and high frequency.
	if u := ACElectroosmosisVelocity(3.3, fPeak/1e4, sigma, relPerm, units.WaterViscosity, scale, lD); u > uPeak/100 {
		t.Errorf("ACEO near DC should vanish: %g vs peak %g", u, uPeak)
	}
	if u := ACElectroosmosisVelocity(3.3, fPeak*1e4, sigma, relPerm, units.WaterViscosity, scale, lD); u > uPeak/100 {
		t.Errorf("ACEO at high frequency should vanish: %g vs peak %g", u, uPeak)
	}
}

func TestACEOVoltageSquareLaw(t *testing.T) {
	sigma, relPerm, scale := 0.03, units.WaterRelPermittivity, 20*units.Micron
	lD := DebyeLength(sigma, units.RoomTemp)
	f := ACEOPeakFrequency(sigma, relPerm, scale, lD)
	u1 := ACElectroosmosisVelocity(1.65, f, sigma, relPerm, units.WaterViscosity, scale, lD)
	u2 := ACElectroosmosisVelocity(3.3, f, sigma, relPerm, units.WaterViscosity, scale, lD)
	if math.Abs(u2/u1-4) > 1e-9 {
		t.Errorf("ACEO V² law: ratio %g != 4", u2/u1)
	}
	if ACElectroosmosisVelocity(3.3, 0, sigma, relPerm, 1e-3, scale, lD) != 0 {
		t.Error("zero frequency should return 0")
	}
}

func TestACEOBelowDEPDriveAtWorkingFrequency(t *testing.T) {
	// At the platform's 1 MHz working point, ACEO must be far below
	// cell-manipulation speeds (the working frequency is chosen far
	// above the ACEO peak, which sits in the kHz range).
	sigma, relPerm, scale := 0.03, units.WaterRelPermittivity, 20*units.Micron
	lD := DebyeLength(sigma, units.RoomTemp)
	fPeak := ACEOPeakFrequency(sigma, relPerm, scale, lD)
	if fPeak > 500*units.Kilohertz {
		t.Errorf("ACEO peak %s should sit below the 1 MHz working point",
			units.Format(fPeak, "Hz"))
	}
	u := ACElectroosmosisVelocity(3.3, 1*units.Megahertz, sigma, relPerm, units.WaterViscosity, scale, lD)
	if u > 10*units.Micron {
		t.Errorf("ACEO at 1 MHz = %s should be below manipulation speeds", units.Format(u, "m/s"))
	}
}

func TestCapillaryFillWashburn(t *testing.T) {
	ch := Channel{Length: 5 * units.Millimeter, Width: 300 * units.Micron, Height: 100 * units.Micron}
	// Hydrophilic channel (θ = 30°): fills in sub-second-to-seconds.
	tFill := CapillaryFillTime(ch, units.WaterViscosity, WaterSurfaceTension, 30*math.Pi/180)
	if tFill <= 0 || tFill > 10 {
		t.Errorf("capillary fill %s implausible for a hydrophilic channel",
			units.FormatDuration(tFill))
	}
	// Exact Washburn check.
	want := 3 * units.WaterViscosity * ch.Length * ch.Length /
		(WaterSurfaceTension * ch.Height * math.Cos(30*math.Pi/180))
	if math.Abs(tFill-want) > 1e-12*want {
		t.Errorf("fill time %g, want %g", tFill, want)
	}
	// Non-wetting channel never self-primes.
	if !math.IsInf(CapillaryFillTime(ch, 1e-3, WaterSurfaceTension, math.Pi/2), 1) {
		t.Error("θ=90° should never fill")
	}
	if !math.IsInf(CapillaryFillTime(ch, 1e-3, WaterSurfaceTension, 2.0), 1) {
		t.Error("hydrophobic channel should never fill")
	}
	// Longer channels fill quadratically slower.
	long := ch
	long.Length *= 2
	tLong := CapillaryFillTime(long, 1e-3, WaterSurfaceTension, 0.5)
	tShort := CapillaryFillTime(ch, 1e-3, WaterSurfaceTension, 0.5)
	if math.Abs(tLong/tShort-4) > 1e-9 {
		t.Errorf("Washburn L² law: ratio %g != 4", tLong/tShort)
	}
}

func TestCapillaryUsesNarrowDimension(t *testing.T) {
	a := Channel{Length: 1e-3, Width: 300 * units.Micron, Height: 50 * units.Micron}
	b := Channel{Length: 1e-3, Width: 50 * units.Micron, Height: 300 * units.Micron}
	ta := CapillaryFillTime(a, 1e-3, WaterSurfaceTension, 0.5)
	tb := CapillaryFillTime(b, 1e-3, WaterSurfaceTension, 0.5)
	if math.Abs(ta-tb) > 1e-12*ta {
		t.Error("fill time must not depend on w/h labeling")
	}
}
