package chamber

import (
	"math"
	"testing"

	"biochip/internal/units"
)

func microChannel(length float64) Channel {
	return Channel{Length: length, Width: 200 * units.Micron, Height: 50 * units.Micron}
}

func TestChannelValidate(t *testing.T) {
	if err := microChannel(1e-3).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Channel{0, 1e-4, 1e-5}).Validate(); err == nil {
		t.Error("zero length should fail")
	}
}

func TestHydraulicResistanceFormula(t *testing.T) {
	ch := microChannel(10 * units.Millimeter)
	r := ch.HydraulicResistance(units.WaterViscosity)
	w, h, l := 200e-6, 50e-6, 10e-3
	want := 12 * 1e-3 * l / (w * h * h * h * (1 - 0.63*h/w))
	if math.Abs(r-want) > 1e-6*want {
		t.Fatalf("R = %g, want %g", r, want)
	}
	// Dimensional sanity: ~1e13-1e15 Pa·s/m³ for such channels.
	if r < 1e12 || r > 1e16 {
		t.Errorf("R = %g outside plausible microchannel range", r)
	}
}

func TestHydraulicResistanceOrientationInvariant(t *testing.T) {
	a := Channel{Length: 1e-3, Width: 2e-4, Height: 5e-5}
	b := Channel{Length: 1e-3, Width: 5e-5, Height: 2e-4}
	if math.Abs(a.HydraulicResistance(1e-3)-b.HydraulicResistance(1e-3)) > 1e-9 {
		t.Error("resistance must not depend on w/h labeling")
	}
}

func TestResistanceScalesWithLength(t *testing.T) {
	r1 := microChannel(1e-3).HydraulicResistance(1e-3)
	r2 := microChannel(2e-3).HydraulicResistance(1e-3)
	if math.Abs(r2/r1-2) > 1e-12 {
		t.Error("R should be linear in length")
	}
}

func TestSeriesChannels(t *testing.T) {
	// Two equal channels in series halve the flow of one.
	n1 := NewNetwork()
	n1.SetPressure("in", 1000)
	n1.SetPressure("out", 0)
	if err := n1.Connect("in", "out", microChannel(1e-3)); err != nil {
		t.Fatal(err)
	}
	if err := n1.Solve(units.WaterViscosity); err != nil {
		t.Fatal(err)
	}
	qSingle, _ := n1.Flow(0)

	n2 := NewNetwork()
	n2.SetPressure("in", 1000)
	n2.SetPressure("out", 0)
	_ = n2.Connect("in", "mid", microChannel(1e-3))
	_ = n2.Connect("mid", "out", microChannel(1e-3))
	if err := n2.Solve(units.WaterViscosity); err != nil {
		t.Fatal(err)
	}
	qSeries, _ := n2.Flow(0)
	if math.Abs(qSeries-qSingle/2) > 1e-9*qSingle {
		t.Errorf("series flow = %g, want %g", qSeries, qSingle/2)
	}
	// Midpoint pressure must be half the drive.
	pMid, _ := n2.Pressure("mid")
	if math.Abs(pMid-500) > 1e-6 {
		t.Errorf("mid pressure = %g, want 500", pMid)
	}
}

func TestParallelChannels(t *testing.T) {
	n := NewNetwork()
	n.SetPressure("in", 1000)
	n.SetPressure("out", 0)
	_ = n.Connect("in", "out", microChannel(1e-3))
	_ = n.Connect("in", "out", microChannel(1e-3))
	if err := n.Solve(units.WaterViscosity); err != nil {
		t.Fatal(err)
	}
	q0, _ := n.Flow(0)
	q1, _ := n.Flow(1)
	if math.Abs(q0-q1) > 1e-12*math.Abs(q0) {
		t.Error("equal parallel channels should split evenly")
	}
	// Net outflow from the inlet equals q0+q1.
	net, _ := n.NetFlowAt("in")
	if math.Abs(-net-(q0+q1)) > 1e-9*(q0+q1) {
		t.Errorf("inlet net flow %g, want %g", net, -(q0 + q1))
	}
}

func TestMassConservationAtJunctions(t *testing.T) {
	// Y-junction: in → j, j → out1, j → out2.
	n := NewNetwork()
	n.SetPressure("in", 2000)
	n.SetPressure("out1", 0)
	n.SetPressure("out2", 100)
	_ = n.Connect("in", "j", microChannel(2e-3))
	_ = n.Connect("j", "out1", microChannel(3e-3))
	_ = n.Connect("j", "out2", microChannel(1e-3))
	if err := n.Solve(units.WaterViscosity); err != nil {
		t.Fatal(err)
	}
	net, err := n.NetFlowAt("j")
	if err != nil {
		t.Fatal(err)
	}
	qIn, _ := n.Flow(0)
	if math.Abs(net) > 1e-9*math.Abs(qIn) {
		t.Errorf("junction leaks: net = %g vs feed %g", net, qIn)
	}
}

func TestSolveRequiresBoundary(t *testing.T) {
	n := NewNetwork()
	_ = n.Connect("a", "b", microChannel(1e-3))
	if err := n.Solve(1e-3); err == nil {
		t.Error("unpinned network should fail to solve")
	}
}

func TestSolveRejectsBadViscosity(t *testing.T) {
	n := NewNetwork()
	n.SetPressure("a", 0)
	if err := n.Solve(0); err == nil {
		t.Error("zero viscosity should fail")
	}
}

func TestConnectValidation(t *testing.T) {
	n := NewNetwork()
	if err := n.Connect("a", "a", microChannel(1e-3)); err == nil {
		t.Error("self-loop should fail")
	}
	if err := n.Connect("a", "b", Channel{}); err == nil {
		t.Error("invalid channel should fail")
	}
}

func TestQueriesBeforeSolve(t *testing.T) {
	n := NewNetwork()
	n.SetPressure("a", 0)
	if _, err := n.Pressure("a"); err == nil {
		t.Error("Pressure before Solve should error")
	}
	if _, err := n.Flow(0); err == nil {
		t.Error("Flow before Solve should error")
	}
	if _, err := n.NetFlowAt("a"); err == nil {
		t.Error("NetFlowAt before Solve should error")
	}
}

func TestUnknownNodeQueries(t *testing.T) {
	n := NewNetwork()
	n.SetPressure("a", 10)
	_ = n.Connect("a", "b", microChannel(1e-3))
	n.SetPressure("b", 0)
	if err := n.Solve(1e-3); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Pressure("nope"); err == nil {
		t.Error("unknown node should error")
	}
	if _, err := n.Flow(5); err == nil {
		t.Error("bad channel index should error")
	}
}

func TestFloatingNodeDoesNotBreakSolve(t *testing.T) {
	n := NewNetwork()
	n.SetPressure("in", 100)
	n.SetPressure("out", 0)
	_ = n.Connect("in", "out", microChannel(1e-3))
	n.AddNode("orphan")
	if err := n.Solve(1e-3); err != nil {
		t.Fatalf("orphan node broke solve: %v", err)
	}
	p, _ := n.Pressure("orphan")
	if p != 0 {
		t.Errorf("orphan pressure = %g, want 0", p)
	}
}

func TestWallShearStressLoadingLimit(t *testing.T) {
	ch := microChannel(5 * units.Millimeter)
	// Solve a single channel at modest pressure and check shear is in a
	// cell-safe range.
	n := NewNetwork()
	n.SetPressure("in", 500) // 5 mbar
	n.SetPressure("out", 0)
	_ = n.Connect("in", "out", ch)
	if err := n.Solve(units.WaterViscosity); err != nil {
		t.Fatal(err)
	}
	q, _ := n.Flow(0)
	tau := ch.WallShearStress(units.WaterViscosity, q)
	if tau <= 0 || tau > 50 {
		t.Errorf("wall shear %g Pa implausible", tau)
	}
	v := ch.MeanVelocity(q)
	if v <= 0 || v > 1 {
		t.Errorf("mean velocity %g m/s implausible", v)
	}
}

func TestAddNodeIdempotent(t *testing.T) {
	n := NewNetwork()
	n.AddNode("a")
	n.AddNode("a")
	if n.NumNodes() != 1 {
		t.Errorf("NumNodes = %d, want 1", n.NumNodes())
	}
}
