package chamber

import (
	"errors"
	"fmt"
	"math"

	"biochip/internal/linalg"
)

// Channel is a straight microchannel segment with rectangular cross
// section, the geometry produced by the dry-film-resist process of the
// paper (§3): one photolithographic layer defines width, the film
// thickness defines height.
type Channel struct {
	// Length, Width, Height in metres. Width ≥ Height by convention.
	Length, Width, Height float64
}

// Validate checks the channel geometry.
func (ch Channel) Validate() error {
	if ch.Length <= 0 || ch.Width <= 0 || ch.Height <= 0 {
		return fmt.Errorf("chamber: non-positive channel dims %+v", ch)
	}
	return nil
}

// HydraulicResistance returns the laminar flow resistance (Pa·s/m³) for
// the given dynamic viscosity, using the standard wide-rectangular
// approximation R = 12·η·L / (w·h³·(1 − 0.63·h/w)) with h the smaller
// dimension.
func (ch Channel) HydraulicResistance(viscosity float64) float64 {
	w, h := ch.Width, ch.Height
	if h > w {
		w, h = h, w
	}
	return 12 * viscosity * ch.Length / (w * h * h * h * (1 - 0.63*h/w))
}

// WallShearStress returns the wall shear stress (Pa) for volumetric flow
// q through the channel: τ = 6·η·Q/(w·h²). Cells are damaged above
// ~1-10 Pa, so this bounds loading flow rates.
func (ch Channel) WallShearStress(viscosity, q float64) float64 {
	w, h := ch.Width, ch.Height
	if h > w {
		w, h = h, w
	}
	return 6 * viscosity * math.Abs(q) / (w * h * h)
}

// MeanVelocity returns the mean flow speed (m/s) at volumetric rate q.
func (ch Channel) MeanVelocity(q float64) float64 {
	return q / (ch.Width * ch.Height)
}

// Network is a hydraulic circuit: nodes connected by channels, with some
// nodes held at fixed pressure (inlets, outlets, open reservoirs).
type Network struct {
	nodes    []string
	nodeIdx  map[string]int
	edges    []edge
	fixed    map[int]float64
	solved   bool
	pressure []float64
	flows    []float64
}

type edge struct {
	from, to int
	ch       Channel
}

// NewNetwork creates an empty hydraulic network.
func NewNetwork() *Network {
	return &Network{nodeIdx: make(map[string]int), fixed: make(map[int]float64)}
}

// AddNode registers a named junction; adding an existing name is a no-op.
func (n *Network) AddNode(name string) {
	if _, ok := n.nodeIdx[name]; ok {
		return
	}
	n.nodeIdx[name] = len(n.nodes)
	n.nodes = append(n.nodes, name)
	n.solved = false
}

// SetPressure pins a node to a fixed pressure (Pa). The node is created
// if needed.
func (n *Network) SetPressure(name string, pa float64) {
	n.AddNode(name)
	n.fixed[n.nodeIdx[name]] = pa
	n.solved = false
}

// Connect adds a channel between two named nodes (created if needed).
func (n *Network) Connect(from, to string, ch Channel) error {
	if err := ch.Validate(); err != nil {
		return err
	}
	if from == to {
		return errors.New("chamber: channel endpoints must differ")
	}
	n.AddNode(from)
	n.AddNode(to)
	n.edges = append(n.edges, edge{n.nodeIdx[from], n.nodeIdx[to], ch})
	n.solved = false
	return nil
}

// NumNodes returns the junction count.
func (n *Network) NumNodes() int { return len(n.nodes) }

// NumChannels returns the channel count.
func (n *Network) NumChannels() int { return len(n.edges) }

// Solve computes node pressures and channel flows for the given
// viscosity by nodal analysis (Kirchhoff current law with conductances
// 1/R). At least one fixed-pressure node is required.
func (n *Network) Solve(viscosity float64) error {
	if viscosity <= 0 {
		return errors.New("chamber: non-positive viscosity")
	}
	if len(n.fixed) == 0 {
		return errors.New("chamber: network needs at least one fixed-pressure node")
	}
	nn := len(n.nodes)
	a := linalg.NewMatrix(nn, nn)
	b := make([]float64, nn)
	for i := 0; i < nn; i++ {
		if p, ok := n.fixed[i]; ok {
			a.Set(i, i, 1)
			b[i] = p
		}
	}
	for _, e := range n.edges {
		g := 1 / e.ch.HydraulicResistance(viscosity)
		if _, ok := n.fixed[e.from]; !ok {
			a.Addto(e.from, e.from, g)
			a.Addto(e.from, e.to, -g)
		}
		if _, ok := n.fixed[e.to]; !ok {
			a.Addto(e.to, e.to, g)
			a.Addto(e.to, e.from, -g)
		}
	}
	// Floating nodes with no channels are singular; pin them to zero.
	for i := 0; i < nn; i++ {
		if a.At(i, i) == 0 {
			a.Set(i, i, 1)
		}
	}
	p, err := linalg.Solve(a, b)
	if err != nil {
		return fmt.Errorf("chamber: network solve: %w", err)
	}
	n.pressure = p
	n.flows = make([]float64, len(n.edges))
	for i, e := range n.edges {
		r := e.ch.HydraulicResistance(viscosity)
		n.flows[i] = (p[e.from] - p[e.to]) / r
	}
	n.solved = true
	return nil
}

// Pressure returns the solved pressure at a node.
func (n *Network) Pressure(name string) (float64, error) {
	if !n.solved {
		return 0, errors.New("chamber: network not solved")
	}
	i, ok := n.nodeIdx[name]
	if !ok {
		return 0, fmt.Errorf("chamber: unknown node %q", name)
	}
	return n.pressure[i], nil
}

// Flow returns the solved volumetric flow (m³/s) through channel index i
// (positive from its 'from' node to its 'to' node).
func (n *Network) Flow(i int) (float64, error) {
	if !n.solved {
		return 0, errors.New("chamber: network not solved")
	}
	if i < 0 || i >= len(n.flows) {
		return 0, fmt.Errorf("chamber: channel index %d out of range", i)
	}
	return n.flows[i], nil
}

// NetFlowAt returns the signed net flow into a node (m³/s); ≈0 for
// interior nodes (mass conservation), source/sink for pinned nodes.
func (n *Network) NetFlowAt(name string) (float64, error) {
	if !n.solved {
		return 0, errors.New("chamber: network not solved")
	}
	idx, ok := n.nodeIdx[name]
	if !ok {
		return 0, fmt.Errorf("chamber: unknown node %q", name)
	}
	sum := 0.0
	for i, e := range n.edges {
		if e.to == idx {
			sum += n.flows[i]
		}
		if e.from == idx {
			sum -= n.flows[i]
		}
	}
	return sum, nil
}
