package chamber

import (
	"math"
	"testing"

	"biochip/internal/units"
)

func TestFromDropPaperGeometry(t *testing.T) {
	// 4 µl over a 6.4×6.4 mm array → ~98 µm chamber height.
	c, err := FromDrop(4*units.Microliter, 6.4*units.Millimeter, 6.4*units.Millimeter)
	if err != nil {
		t.Fatal(err)
	}
	if c.Height < 80*units.Micron || c.Height > 120*units.Micron {
		t.Errorf("chamber height %s outside the ~100 µm class", units.Format(c.Height, "m"))
	}
	if math.Abs(c.Volume()-4*units.Microliter) > 1e-15 {
		t.Errorf("volume roundtrip = %g", c.Volume())
	}
}

func TestFromDropErrors(t *testing.T) {
	if _, err := FromDrop(0, 1e-3, 1e-3); err == nil {
		t.Error("zero volume should error")
	}
	if _, err := FromDrop(1e-9, -1, 1e-3); err == nil {
		t.Error("negative width should error")
	}
}

func TestEvaporationBudget(t *testing.T) {
	c, _ := FromDrop(4*units.Microliter, 6.4*units.Millimeter, 6.4*units.Millimeter)
	rate := c.EvaporationRate(units.RoomTemp, 0.5)
	if rate <= 0 {
		t.Fatal("evaporation rate should be positive")
	}
	// Losing 10% of a 4 µl open drop takes minutes, not hours or ms —
	// the reason assays need humidity control (paper §3 lists
	// evaporation among the hard-to-model effects).
	tt := c.TimeToEvaporateFraction(0.1, units.RoomTemp, 0.5)
	if tt < 30*units.Second || tt > 2*units.Hour {
		t.Errorf("10%% evaporation time %s implausible", units.FormatDuration(tt))
	}
	// Saturated air: no evaporation.
	if r := c.EvaporationRate(units.RoomTemp, 1.0); r != 0 {
		t.Errorf("rh=1 should stop evaporation, got %g", r)
	}
	if !math.IsInf(c.TimeToEvaporateFraction(0.1, units.RoomTemp, 1.0), 1) {
		t.Error("rh=1 evaporation time should be +Inf")
	}
}

func TestEvaporationTemperatureMonotone(t *testing.T) {
	c, _ := FromDrop(4*units.Microliter, 6.4*units.Millimeter, 6.4*units.Millimeter)
	cold := c.EvaporationRate(units.RoomTemp, 0.5)
	warm := c.EvaporationRate(units.BodyTemp, 0.5)
	if warm <= cold {
		t.Error("evaporation must accelerate with temperature")
	}
}

func TestJouleHeatingRegimes(t *testing.T) {
	// Low-conductivity buffer at 3.3 V: well under 1 K — safe.
	dLow := JouleHeating(3.3, 0.03, units.WaterThermalConductivity)
	if dLow > 0.5 {
		t.Errorf("low-σ heating %g K too high", dLow)
	}
	// Physiological saline at the same drive: tens of K — the reason
	// DEP chips use special buffers.
	dHigh := JouleHeating(3.3, 1.5, units.WaterThermalConductivity)
	if dHigh < 1 {
		t.Errorf("saline heating %g K should be significant", dHigh)
	}
	if dHigh/dLow < 10 {
		t.Error("heating should scale linearly with conductivity")
	}
	// Quadratic in voltage.
	ratio := JouleHeating(6.6, 0.03, 0.6) / JouleHeating(3.3, 0.03, 0.6)
	if math.Abs(ratio-4) > 1e-9 {
		t.Errorf("heating V² law: ratio = %g", ratio)
	}
}

func TestPowerDissipated(t *testing.T) {
	c, _ := FromDrop(4*units.Microliter, 6.4*units.Millimeter, 6.4*units.Millimeter)
	p := c.PowerDissipated(3.3, 0.03)
	// P = σ(Vrms/h)²·V_liquid: with h≈98 µm, E≈24 kV/m → ~2e-4 W·range.
	if p <= 0 || p > 0.1 {
		t.Errorf("dissipated power %s implausible", units.Format(p, "W"))
	}
}

func TestElectrothermalVelocitySmallAtPlatformDrive(t *testing.T) {
	// At platform drive in low-σ buffer, ET flow must be far below cell
	// manipulation speeds (otherwise cages would be washed out).
	u := ElectrothermalVelocity(3.3, 0.03, units.WaterRelPermittivity,
		units.WaterThermalConductivity, units.WaterViscosity, units.RoomTemp,
		20*units.Micron)
	if u > 10*units.Micron {
		t.Errorf("ET velocity %s too large at platform drive", units.Format(u, "m/s"))
	}
	// But it grows as V⁴: at 10× the voltage it dominates.
	uHot := ElectrothermalVelocity(33, 0.03, units.WaterRelPermittivity,
		units.WaterThermalConductivity, units.WaterViscosity, units.RoomTemp,
		20*units.Micron)
	if uHot/u < 9000 || uHot/u > 11000 {
		t.Errorf("ET V⁴ scaling violated: ratio %g", uHot/u)
	}
	if ElectrothermalVelocity(3.3, 0.03, 78, 0.6, 1e-3, 293, 0) != 0 {
		t.Error("zero scale should return 0")
	}
}

func TestSettlingTime(t *testing.T) {
	c, _ := FromDrop(4*units.Microliter, 6.4*units.Millimeter, 6.4*units.Millimeter)
	// ~11 µm/s sedimentation across ~98 µm → ~9 s.
	tt := c.SettlingTime(11 * units.Micron)
	if tt < 5 || tt > 20 {
		t.Errorf("settling time %s implausible", units.FormatDuration(tt))
	}
	if !math.IsInf(c.SettlingTime(0), 1) {
		t.Error("zero speed should never settle")
	}
}

func TestChamberValidate(t *testing.T) {
	if err := (Chamber{1e-3, 1e-3, 1e-4}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Chamber{0, 1e-3, 1e-4}).Validate(); err == nil {
		t.Error("zero width should fail")
	}
}
