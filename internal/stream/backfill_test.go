package stream

import (
	"reflect"
	"testing"
)

// TestTapeBackfillNoGap is the log-backed-ring regression test: with a
// tape tee as backfill, a subscriber attaching after the bounded window
// overwrote the head replays the complete stream — no gap event, every
// sequence number — even though the ring retains only 4 events.
func TestTapeBackfillNoGap(t *testing.T) {
	r := NewRing(4)
	r.now = func() float64 { return 0 }
	tape := &Tape{}
	r.Tee(tape.Append)
	r.SetBackfill(tape.Range)
	publishN(r, 20)
	r.Close()

	evs := drain(r.Subscribe(0))
	if len(evs) != 20 {
		t.Fatalf("got %d events, want 20", len(evs))
	}
	for i, ev := range evs {
		if ev.Type == Gap {
			t.Fatalf("event %d is a gap despite a full backfill", i)
		}
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	// Resume from the middle of the backfilled region.
	mid := drain(r.Subscribe(7))
	if len(mid) != 13 || mid[0].Seq != 8 {
		t.Fatalf("resume after 7: %d events, first seq %d", len(mid), mid[0].Seq)
	}
}

// TestPartialBackfillGapOnlyUnrecoverable pins the consistency fix: a
// backfill that lost its own head (here: only seqs >= 5 survive) must
// produce a gap naming exactly the unrecoverable range, then the
// recovered run, then the ring window — never a gap spanning data the
// log still holds.
func TestPartialBackfillGapOnlyUnrecoverable(t *testing.T) {
	r := NewRing(4)
	r.now = func() float64 { return 0 }
	tape := &Tape{}
	r.Tee(tape.Append)
	publishN(r, 20)
	r.Close()
	r.SetBackfill(func(from, to uint64) []Event {
		if from < 5 {
			from = 5
		}
		return tape.Range(from, to)
	})

	evs := drain(r.Subscribe(0))
	if len(evs) != 17 {
		t.Fatalf("got %d events, want gap + 16", len(evs))
	}
	if evs[0].Type != Gap || evs[0].Gap.From != 1 || evs[0].Gap.To != 4 {
		t.Fatalf("first event %+v, want gap [1,4]", evs[0])
	}
	for i, ev := range evs[1:] {
		if ev.Seq != uint64(i+5) {
			t.Fatalf("recovered event %d has seq %d, want %d", i, ev.Seq, i+5)
		}
	}
}

// TestNoBackfillKeepsGapSemantics pins the pre-persistence behavior the
// default (non-durable) service still runs on: without a backfill the
// whole lost range is one gap, exactly as before.
func TestNoBackfillKeepsGapSemantics(t *testing.T) {
	r := NewRing(4)
	r.now = func() float64 { return 0 }
	publishN(r, 20)
	r.Close()
	evs := drain(r.Subscribe(0))
	if len(evs) != 5 {
		t.Fatalf("got %d events, want gap + 4 retained", len(evs))
	}
	if evs[0].Type != Gap || evs[0].Gap.From != 1 || evs[0].Gap.To != 16 {
		t.Fatalf("gap %+v, want [1,16]", evs[0])
	}
}

// TestRecoveredRing rebuilds a finished job's ring from a fake log: the
// window is empty, the stream is closed, and subscribers replay wholly
// through the backfill with live-identical resume semantics.
func TestRecoveredRing(t *testing.T) {
	tape := &Tape{}
	src := NewRing(64)
	src.now = func() float64 { return 42 }
	src.Tee(tape.Append)
	publishN(src, 9)
	src.Close()
	want := drain(src.Subscribe(0))

	r := RecoveredRing(9, tape.Range)
	if got := r.Last(); got != 9 {
		t.Fatalf("Last() = %d, want 9", got)
	}
	got := drain(r.Subscribe(0))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered replay differs:\n got %+v\nwant %+v", got, want)
	}
	// Mid-stream resume, as an SSE reconnect would do it.
	tail := drain(r.Subscribe(6))
	if len(tail) != 3 || tail[0].Seq != 7 {
		t.Fatalf("resume after 6: %d events, first seq %d", len(tail), tail[0].Seq)
	}
	// Resume at the end: nothing left, clean end of stream.
	if rest := drain(r.Subscribe(9)); len(rest) != 0 {
		t.Fatalf("resume after 9 returned %d events", len(rest))
	}
}

// TestTeeObservesStampedEvents pins the tee contract: the tape records
// events after sequencing and stamping, so its copy is exactly what
// subscribers saw and what a durable log should persist.
func TestTeeObservesStampedEvents(t *testing.T) {
	r := NewRing(2)
	r.now = func() float64 { return 3.5 }
	tape := &Tape{}
	r.Tee(tape.Append)
	publishN(r, 5)
	r.Close()
	evs := tape.Events()
	if len(evs) != 5 {
		t.Fatalf("tape has %d events, want 5", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) || ev.Wall != 3.5 {
			t.Fatalf("tape event %d: seq %d wall %v", i, ev.Seq, ev.Wall)
		}
	}
	r.Tee(nil) // detaching must be safe on a closed ring
}
