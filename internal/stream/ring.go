package stream

import (
	"sync"
	"time"
)

// DefaultCapacity bounds a ring built with NewRing(0).
const DefaultCapacity = 512

// Ring is the bounded, replayable event buffer of one job. Publish
// assigns monotonic sequence numbers and never blocks: when the ring is
// full the oldest event is overwritten, and a subscriber that had not
// read it yet receives a synthetic gap event instead of stalling the
// publisher. Subscribers attach at any time (Subscribe) and replay the
// retained window from any resume point — the engine behind SSE
// Last-Event-ID reconnects.
type Ring struct {
	mu sync.Mutex
	// buf is circular storage indexed by (seq-1) % cap.
	buf []Event
	// first is the oldest retained sequence number; next is the next
	// to assign. Both start at 1 (empty ring: first == next).
	first, next uint64
	closed      bool
	subs        map[*Sub]struct{}
	// now stamps Event.Wall; tests may zero-stamp by replacing it.
	now func() float64
}

// NewRing builds a ring retaining at most capacity events (0 or
// negative selects DefaultCapacity).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = DefaultCapacity
	}
	return &Ring{
		buf:   make([]Event, capacity),
		first: 1,
		next:  1,
		subs:  make(map[*Sub]struct{}),
		//detlint:allow walltime — THE sanctioned wall stamp: Event.Wall is telemetry, explicitly excluded from the determinism contract (tests zero it)
		now: func() float64 { return float64(time.Now().UnixNano()) / 1e9 },
	}
}

// Publish assigns the event its sequence number, stamps its wall clock,
// stores it (overwriting the oldest when full) and wakes subscribers.
// It never blocks and returns the assigned sequence number. Publishing
// on a closed ring is a no-op returning 0.
func (r *Ring) Publish(ev Event) uint64 {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0
	}
	ev.Seq = r.next
	ev.Wall = r.now()
	r.buf[int((ev.Seq-1)%uint64(len(r.buf)))] = ev
	r.next++
	if r.next-r.first > uint64(len(r.buf)) {
		r.first = r.next - uint64(len(r.buf))
	}
	r.notifyLocked()
	r.mu.Unlock()
	return ev.Seq
}

// Sink returns a Sink publishing into the ring.
func (r *Ring) Sink() Sink { return func(ev Event) { r.Publish(ev) } }

// Close marks the stream complete: subscribers drain the retained
// events and then see end-of-stream. Idempotent.
func (r *Ring) Close() {
	r.mu.Lock()
	r.closed = true
	r.notifyLocked()
	r.mu.Unlock()
}

// Last returns the highest sequence number published so far (0 when
// nothing was published).
func (r *Ring) Last() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next - 1
}

// notifyLocked nudges every subscriber; the 1-slot signal channel makes
// the send non-blocking, so a parked SSE writer can never slow Publish.
func (r *Ring) notifyLocked() {
	for sub := range r.subs {
		select {
		case sub.sig <- struct{}{}:
		default:
		}
	}
}

// Subscribe attaches a subscriber that resumes after the given sequence
// number (0 replays from the beginning of the retained window). Cancel
// the subscription when done.
func (r *Ring) Subscribe(after uint64) *Sub {
	sub := &Sub{ring: r, cursor: after, sig: make(chan struct{}, 1)}
	r.mu.Lock()
	r.subs[sub] = struct{}{}
	r.mu.Unlock()
	return sub
}

// Sub is one subscriber's cursor into a ring.
type Sub struct {
	ring   *Ring
	cursor uint64
	sig    chan struct{}
}

// Next returns the subscriber's next event, blocking until one is
// available, the ring closes (all retained events delivered → ok
// false), or stop fires (ok false). When the ring overwrote events the
// subscriber had not read, Next returns a synthetic gap event covering
// the lost range and resumes at the oldest retained event.
func (s *Sub) Next(stop <-chan struct{}) (Event, bool) {
	for {
		s.ring.mu.Lock()
		want := s.cursor + 1
		switch {
		case want < s.ring.first:
			gap := Event{Type: Gap, Gap: &GapInfo{From: want, To: s.ring.first - 1}}
			s.cursor = s.ring.first - 1
			s.ring.mu.Unlock()
			return gap, true
		case want < s.ring.next:
			ev := s.ring.buf[int((want-1)%uint64(len(s.ring.buf)))]
			s.cursor = want
			s.ring.mu.Unlock()
			return ev, true
		case s.ring.closed:
			s.ring.mu.Unlock()
			return Event{}, false
		}
		s.ring.mu.Unlock()
		select {
		case <-s.sig:
		case <-stop:
			return Event{}, false
		}
	}
}

// Cursor returns the last sequence number delivered to this subscriber.
func (s *Sub) Cursor() uint64 { return s.cursor }

// Cancel detaches the subscriber from the ring.
func (s *Sub) Cancel() {
	s.ring.mu.Lock()
	delete(s.ring.subs, s)
	s.ring.mu.Unlock()
}
