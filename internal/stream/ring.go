package stream

import (
	"sync"
	"time"
)

// DefaultCapacity bounds a ring built with NewRing(0).
const DefaultCapacity = 512

// Ring is the bounded, replayable event buffer of one job. Publish
// assigns monotonic sequence numbers and never blocks: when the ring is
// full the oldest event is overwritten, and a subscriber that had not
// read it yet receives a synthetic gap event instead of stalling the
// publisher. Subscribers attach at any time (Subscribe) and replay the
// retained window from any resume point — the engine behind SSE
// Last-Event-ID reconnects.
type Ring struct {
	mu sync.Mutex
	// buf is circular storage indexed by (seq-1) % cap.
	buf []Event
	// first is the oldest retained sequence number; next is the next
	// to assign. Both start at 1 (empty ring: first == next).
	first, next uint64
	closed      bool
	subs        map[*Sub]struct{}
	// now stamps Event.Wall; tests may zero-stamp by replacing it.
	now func() float64
	// tee, when set, receives every published event (stamped, with its
	// sequence number) synchronously under the ring lock — the hook a
	// durable log uses to capture the full stream past the window.
	tee Sink
	// backfill, when set, recovers events that have left the window:
	// it returns the retained subsequence of [from, to] in ascending
	// seq order. Subscribers only see a gap for sequence numbers the
	// backfill cannot produce — data that is truly unrecoverable.
	backfill func(from, to uint64) []Event
}

// NewRing builds a ring retaining at most capacity events (0 or
// negative selects DefaultCapacity).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = DefaultCapacity
	}
	return &Ring{
		buf:   make([]Event, capacity),
		first: 1,
		next:  1,
		subs:  make(map[*Sub]struct{}),
		//detlint:allow walltime — THE sanctioned wall stamp: Event.Wall is telemetry, explicitly excluded from the determinism contract (tests zero it)
		now: func() float64 { return float64(time.Now().UnixNano()) / 1e9 },
	}
}

// Publish assigns the event its sequence number, stamps its wall clock,
// stores it (overwriting the oldest when full) and wakes subscribers.
// It never blocks and returns the assigned sequence number. Publishing
// on a closed ring is a no-op returning 0.
func (r *Ring) Publish(ev Event) uint64 {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0
	}
	ev.Seq = r.next
	ev.Wall = r.now()
	r.buf[int((ev.Seq-1)%uint64(len(r.buf)))] = ev
	r.next++
	if r.tee != nil {
		r.tee(ev)
	}
	if r.next-r.first > uint64(len(r.buf)) {
		r.first = r.next - uint64(len(r.buf))
	}
	r.notifyLocked()
	r.mu.Unlock()
	return ev.Seq
}

// Sink returns a Sink publishing into the ring.
func (r *Ring) Sink() Sink { return func(ev Event) { r.Publish(ev) } }

// Tee attaches (or, with nil, detaches) a secondary sink that receives
// every published event after it is stamped and sequenced. The tee runs
// synchronously under the ring lock and must not block — Tape.Append,
// the production tee, never does.
func (r *Ring) Tee(sink Sink) {
	r.mu.Lock()
	r.tee = sink
	r.mu.Unlock()
}

// SetBackfill installs (or, with nil, removes) the recovery source for
// events that have been overwritten out of the ring window. fn is
// called under the ring lock with an inclusive [from, to] range and
// must return whatever contiguous suffix of that range it still holds,
// in ascending sequence order; subscribers then see a gap only for the
// prefix nothing can recover. Installing a backfill retroactively
// upgrades already-attached subscribers — their next out-of-window read
// consults it.
func (r *Ring) SetBackfill(fn func(from, to uint64) []Event) {
	r.mu.Lock()
	r.backfill = fn
	r.mu.Unlock()
}

// RecoveredRing rebuilds the ring of a finished job restored from a
// durable log: the stream is complete (closed) at sequence number last,
// the in-memory window is empty, and every event a subscriber asks for
// is served through the backfill. Resume semantics are identical to a
// live ring's — Subscribe(after) replays (last-after) events — so SSE
// Last-Event-ID reconnects work unchanged across a daemon restart.
func RecoveredRing(last uint64, backfill func(from, to uint64) []Event) *Ring {
	r := NewRing(1)
	r.first, r.next = last+1, last+1
	r.closed = true
	r.backfill = backfill
	return r
}

// Close marks the stream complete: subscribers drain the retained
// events and then see end-of-stream. Idempotent.
func (r *Ring) Close() {
	r.mu.Lock()
	r.closed = true
	r.notifyLocked()
	r.mu.Unlock()
}

// Last returns the highest sequence number published so far (0 when
// nothing was published).
func (r *Ring) Last() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next - 1
}

// notifyLocked nudges every subscriber; the 1-slot signal channel makes
// the send non-blocking, so a parked SSE writer can never slow Publish.
func (r *Ring) notifyLocked() {
	for sub := range r.subs {
		select {
		case sub.sig <- struct{}{}:
		default:
		}
	}
}

// Subscribe attaches a subscriber that resumes after the given sequence
// number (0 replays from the beginning of the retained window). Cancel
// the subscription when done.
func (r *Ring) Subscribe(after uint64) *Sub {
	sub := &Sub{ring: r, cursor: after, sig: make(chan struct{}, 1)}
	r.mu.Lock()
	r.subs[sub] = struct{}{}
	r.mu.Unlock()
	return sub
}

// Sub is one subscriber's cursor into a ring.
type Sub struct {
	ring   *Ring
	cursor uint64
	sig    chan struct{}
	// pending holds backfilled events not yet delivered. It is only
	// touched by the subscriber's own goroutine.
	pending []Event
}

// Next returns the subscriber's next event, blocking until one is
// available, the ring closes (all retained events delivered → ok
// false), or stop fires (ok false). When the ring overwrote events the
// subscriber had not read, Next first consults the ring's backfill (a
// durable log can usually recover them); only the range no backfill can
// produce comes back as a synthetic gap event, after which delivery
// resumes at the oldest recoverable event.
func (s *Sub) Next(stop <-chan struct{}) (Event, bool) {
	if len(s.pending) > 0 {
		ev := s.pending[0]
		s.pending = s.pending[1:]
		s.cursor = ev.Seq
		return ev, true
	}
	for {
		s.ring.mu.Lock()
		want := s.cursor + 1
		switch {
		case want < s.ring.first:
			if ev, ok := s.refillLocked(want); ok {
				s.ring.mu.Unlock()
				return ev, true
			}
			gap := Event{Type: Gap, Gap: &GapInfo{From: want, To: s.ring.first - 1}}
			s.cursor = s.ring.first - 1
			s.ring.mu.Unlock()
			return gap, true
		case want < s.ring.next:
			ev := s.ring.buf[int((want-1)%uint64(len(s.ring.buf)))]
			s.cursor = want
			s.ring.mu.Unlock()
			return ev, true
		case s.ring.closed:
			s.ring.mu.Unlock()
			return Event{}, false
		}
		s.ring.mu.Unlock()
		select {
		case <-s.sig:
		case <-stop:
			return Event{}, false
		}
	}
}

// refillLocked asks the ring's backfill for the out-of-window range
// [want, first-1] and queues whatever it recovers. It returns the first
// event to deliver: a recovered event when the backfill covers want
// itself, or a gap naming exactly the unrecoverable prefix when it only
// covers a suffix. ok is false when nothing was recovered at all (the
// caller falls through to the plain whole-range gap). Caller holds
// s.ring.mu.
func (s *Sub) refillLocked(want uint64) (Event, bool) {
	if s.ring.backfill == nil {
		return Event{}, false
	}
	to := s.ring.first - 1
	evs := s.ring.backfill(want, to)
	// Defensive trim: keep only in-range events forming one contiguous
	// ascending run, so a misbehaving backfill cannot corrupt cursors.
	run := evs[:0:len(evs)]
	for _, ev := range evs {
		if ev.Seq < want || ev.Seq > to {
			continue
		}
		if len(run) > 0 && ev.Seq != run[len(run)-1].Seq+1 {
			break
		}
		run = append(run, ev)
	}
	if len(run) == 0 {
		return Event{}, false
	}
	if run[0].Seq > want {
		// Partial recovery: the gap covers only what is truly lost.
		s.pending = run
		s.cursor = run[0].Seq - 1
		return Event{Type: Gap, Gap: &GapInfo{From: want, To: run[0].Seq - 1}}, true
	}
	s.pending = run[1:]
	s.cursor = run[0].Seq
	return run[0], true
}

// Cursor returns the last sequence number delivered to this subscriber.
func (s *Sub) Cursor() uint64 { return s.cursor }

// Cancel detaches the subscriber from the ring.
func (s *Sub) Cancel() {
	s.ring.mu.Lock()
	delete(s.ring.subs, s)
	s.ring.mu.Unlock()
}
