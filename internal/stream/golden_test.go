package stream

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenEventStreamRoundTrips pins the committed example stream
// (docs/examples/events.ndjson, also documented in docs/streaming.md)
// to the Event codec: every line must decode with no unknown fields and
// re-encode to identical bytes, and the stream must have the canonical
// envelope shape — placed first, started second, terminal event last,
// contiguous sequence numbers. tools/doclint enforces the same
// round-trip in CI so the example cannot drift from the wire format.
func TestGoldenEventStreamRoundTrips(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "examples", "events.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for i, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		out, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		if !bytes.Equal(out, line) {
			t.Errorf("line %d does not round-trip:\n  file:  %s\n  codec: %s", i+1, line, out)
		}
		events = append(events, ev)
	}
	if len(events) < 4 {
		t.Fatalf("example stream has only %d events", len(events))
	}
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Errorf("line %d has seq %d: example stream not contiguous", i+1, ev.Seq)
		}
	}
	if events[0].Type != JobPlaced || events[1].Type != JobStarted {
		t.Errorf("example opens %q, %q; want job.placed, job.started", events[0].Type, events[1].Type)
	}
	last := events[len(events)-1].Type
	if last != JobDone && last != JobFailed {
		t.Errorf("example ends with %q, want a terminal job event", last)
	}
}
