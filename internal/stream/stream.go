// Package stream is the live event surface of an executing assay: a
// small deterministic event vocabulary (job placement, per-operation
// progress, scan-table row batches, routing provenance, completion)
// plus a bounded, replayable, per-job ring buffer that fans events out
// to any number of subscribers without ever blocking the producer.
//
// The package sits below every layer that emits or serves events: the
// chip simulator and the assay executor publish through a Sink, the
// assay service owns one Ring per job, and the HTTP layer turns a Sub
// into a Server-Sent-Events stream (GET /v1/assays/{id}/events).
//
// Determinism contract. Event payloads carry only seed-deterministic
// state: sequence numbers, the simulated clock (T) and the operation /
// scan / plan fields are bit-identical for a fixed seed regardless of
// chip.Config.Parallelism, shard count, stealing or subscriber
// behaviour. The only exception is Wall, the wall-clock publish stamp,
// which is explicitly excluded from the contract (tests zero it before
// comparing). docs/streaming.md is the full taxonomy and wire contract.
package stream

import "sync"

// Event types. The job.* envelope events are published by the service
// around an execution; everything else is emitted by the instrumented
// executor (internal/assay, internal/chip). The gap and shutdown types
// are synthesized at delivery time and never stored in a ring.
const (
	// JobPlaced announces admission: the job exists, placement chose
	// its eligible profiles, and it is queued. Always seq 1.
	JobPlaced = "job.placed"
	// JobStarted announces that a shard claimed the job. Always seq 2.
	JobStarted = "job.started"
	// OpStarted and OpFinished bracket every assay operation.
	OpStarted  = "op.started"
	OpFinished = "op.finished"
	// ScanRows carries one batch of scan-table rows as the detector
	// produces them; a scan emits ⌈sites/ChunkRows⌉ batches.
	ScanRows = "scan.rows"
	// PlanExecuted is the routing provenance of one executed plan.
	PlanExecuted = "plan.executed"
	// JobDone and JobFailed terminate a job's stream (the ring closes
	// right after).
	JobDone   = "job.done"
	JobFailed = "job.failed"
	// Gap tells a slow subscriber that the bounded ring overwrote
	// events it had not read yet; Event.Gap holds the lost range. Gap
	// events have no sequence number of their own.
	Gap = "gap"
	// Shutdown tells a subscriber the service has drained and is about
	// to exit; it is the last event of a stream when it appears.
	Shutdown = "shutdown"
)

// ChunkRows is the scan-table batch size: a scan's detection table is
// streamed in batches of at most this many rows.
const ChunkRows = 64

// Event is one entry of a job's event stream. Payload fields are
// pointers so each event carries exactly the block its type needs and
// the JSON wire form stays compact; field order here fixes the wire
// order (docs/examples/events.ndjson pins it).
type Event struct {
	// Seq is the monotonic per-job sequence number, starting at 1.
	// Synthetic events (gap, shutdown) have Seq 0.
	Seq uint64 `json:"seq,omitempty"`
	// Type is one of the event-type constants above.
	Type string `json:"type"`
	// T is the simulated assay clock at emission, in seconds. Part of
	// the determinism contract.
	T float64 `json:"t"`
	// Wall is the wall-clock publish time in Unix seconds. It is
	// telemetry only and excluded from the determinism contract.
	Wall float64 `json:"wall,omitempty"`
	// Job is the envelope payload of job.* events.
	Job *JobInfo `json:"job,omitempty"`
	// Op is the payload of op.started / op.finished events.
	Op *OpInfo `json:"op,omitempty"`
	// Scan is the payload of scan.rows events.
	Scan *ScanChunk `json:"scan,omitempty"`
	// Plan is the payload of plan.executed events.
	Plan *PlanInfo `json:"plan,omitempty"`
	// Gap is the payload of gap events.
	Gap *GapInfo `json:"gap,omitempty"`
	// Err carries the failure message of job.failed events.
	Err string `json:"error,omitempty"`
}

// JobInfo is the envelope payload: identity at placement, the executing
// profile at start, and the report summary at completion.
type JobInfo struct {
	ID      string `json:"id,omitempty"`
	Program string `json:"program,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// Eligible lists the profiles placement admitted the job to.
	Eligible []string `json:"eligible,omitempty"`
	// Profile is the die profile whose shard executes the job.
	Profile string `json:"profile,omitempty"`
	// Completion summary (job.done): simulated duration, trapped
	// particles, routed steps and accumulated scan errors.
	Duration   float64 `json:"duration,omitempty"`
	Trapped    int     `json:"trapped,omitempty"`
	Steps      int     `json:"steps,omitempty"`
	ScanErrors int     `json:"scan_errors,omitempty"`
}

// OpInfo identifies one assay operation by position and wire kind.
type OpInfo struct {
	// Index is the operation's position in the program.
	Index int `json:"index"`
	// Kind is the operation's wire name ("load", "scan", ...).
	Kind string `json:"kind"`
	// Detail is a deterministic human-readable summary: the op
	// description on op.started, the outcome on op.finished.
	Detail string `json:"detail,omitempty"`
}

// ScanChunk is one batch of scan-table rows.
type ScanChunk struct {
	// Scan is the 0-based scan number within the job.
	Scan int `json:"scan"`
	// Batch / Batches locate the chunk within the scan's table.
	Batch   int `json:"batch"`
	Batches int `json:"batches"`
	// Averaging is the per-pixel sample count of the scan.
	Averaging int `json:"averaging"`
	// Rows is the chunk's slice of the detection table, in the scan's
	// deterministic site order.
	Rows []Detection `json:"rows"`
}

// Detection is the stream wire form of one cage site's scan verdict
// (a flattened chip.Detection).
type Detection struct {
	Col      int     `json:"col"`
	Row      int     `json:"row"`
	ID       int     `json:"id"`
	Occupied bool    `json:"occupied"`
	Detected bool    `json:"detected"`
	SNR      float64 `json:"snr"`
}

// PlanInfo is the routing provenance of one executed plan.
type PlanInfo struct {
	// Planner is the full name of the producing planner.
	Planner string `json:"planner,omitempty"`
	// Makespan and Moves summarize the executed plan.
	Makespan int `json:"makespan"`
	Moves    int `json:"moves"`
}

// GapInfo is the inclusive sequence range a slow subscriber lost to
// ring truncation.
type GapInfo struct {
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
}

// Sink consumes events as instrumentation produces them. Sinks are
// invoked synchronously on the executing goroutine and must not block
// (Ring.Publish, the production sink, never does).
type Sink func(Event)

// Tape is the unbounded, thread-safe recorder behind the log-backed
// ring: attached as a Ring.Tee it retains the job's full event stream —
// already stamped and sequenced, so sequence numbers run 1..n with no
// holes — until the finish record is persisted and the durable log
// takes over as the backfill source. Range is the Ring backfill
// signature, so a live job's subscribers never see a gap while a tape
// is attached.
type Tape struct {
	mu  sync.Mutex
	evs []Event
}

// Append records one event. It is the Ring tee target and never blocks
// beyond the tape's own lock.
func (t *Tape) Append(ev Event) {
	t.mu.Lock()
	t.evs = append(t.evs, ev)
	t.mu.Unlock()
}

// Range returns the recorded events with sequence numbers in the
// inclusive [from, to] range — the Ring backfill contract.
func (t *Tape) Range(from, to uint64) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	if from < 1 {
		from = 1
	}
	if to > uint64(len(t.evs)) {
		to = uint64(len(t.evs))
	}
	if from > to {
		return nil
	}
	out := make([]Event, to-from+1)
	copy(out, t.evs[from-1:to])
	return out
}

// Events returns a snapshot of the full recorded stream.
func (t *Tape) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.evs))
	copy(out, t.evs)
	return out
}

// Collector is an in-memory Sink for serial replays and tests: it
// assigns sequence numbers exactly like a Ring (starting at 1) but
// retains every event and never stamps Wall.
type Collector struct {
	next   uint64
	Events []Event
}

// Sink returns the collecting sink.
func (c *Collector) Sink() Sink {
	return func(ev Event) {
		c.next++
		ev.Seq = c.next
		c.Events = append(c.Events, ev)
	}
}
