package stream

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// testRing builds a ring with a deterministic wall stamp so tests can
// assert full events.
func testRing(capacity int) *Ring {
	r := NewRing(capacity)
	r.now = func() float64 { return 0 }
	return r
}

func publishN(r *Ring, n int) {
	for i := 0; i < n; i++ {
		r.Publish(Event{Type: OpStarted, Op: &OpInfo{Index: i, Kind: "load"}})
	}
}

// drain collects every remaining event of a subscription.
func drain(sub *Sub) []Event {
	var out []Event
	done := make(chan struct{})
	close(done) // never block: ring must already hold everything
	for {
		ev, ok := sub.Next(done)
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

// TestRingReplayAndResume pins the basic contract: monotonic sequence
// numbers from 1, full replay for a late subscriber, and duplicate-free
// resume from any cursor.
func TestRingReplayAndResume(t *testing.T) {
	r := testRing(16)
	publishN(r, 5)
	r.Close()

	got := drain(r.Subscribe(0))
	if len(got) != 5 {
		t.Fatalf("full replay: %d events, want 5", len(got))
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Op == nil || ev.Op.Index != i {
			t.Errorf("event %d payload out of order: %+v", i, ev.Op)
		}
	}

	// Resume mid-stream: no duplicates, no gaps.
	resumed := drain(r.Subscribe(3))
	if len(resumed) != 2 || resumed[0].Seq != 4 || resumed[1].Seq != 5 {
		t.Fatalf("resume after 3: %+v", resumed)
	}
}

// TestRingGapOnTruncation overwhelms a tiny ring: the slow subscriber
// must receive a single gap event naming exactly the lost range, then
// the retained tail — and the publisher must never have blocked.
func TestRingGapOnTruncation(t *testing.T) {
	r := testRing(4)
	sub := r.Subscribe(0)
	publishN(r, 10) // events 1..6 overwritten, 7..10 retained
	r.Close()

	got := drain(sub)
	if len(got) != 5 {
		t.Fatalf("got %d events, want gap + 4: %+v", len(got), got)
	}
	if got[0].Type != Gap || got[0].Gap == nil {
		t.Fatalf("first event is %q, want gap", got[0].Type)
	}
	if got[0].Gap.From != 1 || got[0].Gap.To != 6 {
		t.Errorf("gap range [%d,%d], want [1,6]", got[0].Gap.From, got[0].Gap.To)
	}
	if got[0].Seq != 0 {
		t.Errorf("gap event carries seq %d, want 0", got[0].Seq)
	}
	for i, ev := range got[1:] {
		if ev.Seq != uint64(7+i) {
			t.Errorf("post-gap event %d has seq %d, want %d", i, ev.Seq, 7+i)
		}
	}
}

// TestRingPublisherNeverBlocks parks a subscriber that never reads and
// publishes far past capacity; Publish must stay prompt.
func TestRingPublisherNeverBlocks(t *testing.T) {
	r := testRing(8)
	sub := r.Subscribe(0)
	defer sub.Cancel()
	done := make(chan struct{})
	go func() {
		publishN(r, 10000)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher blocked on an unread subscriber")
	}
}

// TestRingBlocksUntilPublish verifies the live path: Next parks until
// an event arrives, and returns promptly when one does.
func TestRingBlocksUntilPublish(t *testing.T) {
	r := testRing(8)
	sub := r.Subscribe(0)
	defer sub.Cancel()
	got := make(chan Event, 1)
	go func() {
		ev, ok := sub.Next(nil)
		if ok {
			got <- ev
		}
		close(got)
	}()
	time.Sleep(10 * time.Millisecond)
	r.Publish(Event{Type: JobPlaced})
	select {
	case ev := <-got:
		if ev.Type != JobPlaced || ev.Seq != 1 {
			t.Fatalf("got %+v", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("subscriber never woke")
	}
}

// TestRingStopCancelsNext verifies stop wins over an idle stream.
func TestRingStopCancelsNext(t *testing.T) {
	r := testRing(8)
	sub := r.Subscribe(0)
	defer sub.Cancel()
	stop := make(chan struct{})
	done := make(chan bool, 1)
	go func() {
		_, ok := sub.Next(stop)
		done <- ok
	}()
	close(stop)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned an event after stop")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Next ignored stop")
	}
}

// TestRingConcurrentFanOut races one publisher against many readers
// (run under -race): every fast-enough subscriber sees the identical
// gap-free sequence.
func TestRingConcurrentFanOut(t *testing.T) {
	const events, readers = 200, 8
	r := testRing(events) // big enough that nobody gaps
	var wg sync.WaitGroup
	streams := make([][]Event, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		sub := r.Subscribe(0)
		go func(i int, sub *Sub) {
			defer wg.Done()
			defer sub.Cancel()
			for {
				ev, ok := sub.Next(nil)
				if !ok {
					return
				}
				streams[i] = append(streams[i], ev)
			}
		}(i, sub)
	}
	publishN(r, events)
	r.Close()
	wg.Wait()
	want := fmt.Sprintf("%+v", streams[0])
	for i, got := range streams {
		if len(got) != events {
			t.Fatalf("reader %d saw %d events, want %d", i, len(got), events)
		}
		if fmt.Sprintf("%+v", got) != want {
			t.Errorf("reader %d diverged from reader 0", i)
		}
	}
}

// TestRingPublishAfterClose pins the terminal contract: a closed ring
// rejects publications.
func TestRingPublishAfterClose(t *testing.T) {
	r := testRing(8)
	publishN(r, 2)
	r.Close()
	if seq := r.Publish(Event{Type: JobDone}); seq != 0 {
		t.Fatalf("publish after close assigned seq %d", seq)
	}
	if got := drain(r.Subscribe(0)); len(got) != 2 {
		t.Fatalf("closed ring replayed %d events, want 2", len(got))
	}
	if r.Last() != 2 {
		t.Fatalf("Last() = %d, want 2", r.Last())
	}
}

// TestCollectorMatchesRingNumbering keeps the serial-replay sink and
// the production ring on the same sequence-number scheme.
func TestCollectorMatchesRingNumbering(t *testing.T) {
	var c Collector
	sink := c.Sink()
	for i := 0; i < 3; i++ {
		sink(Event{Type: OpStarted, Op: &OpInfo{Index: i, Kind: "scan"}})
	}
	if len(c.Events) != 3 {
		t.Fatalf("collector holds %d events", len(c.Events))
	}
	for i, ev := range c.Events {
		if ev.Seq != uint64(i+1) {
			t.Errorf("collector event %d has seq %d", i, ev.Seq)
		}
		if ev.Wall != 0 {
			t.Errorf("collector stamped wall clock %v", ev.Wall)
		}
	}
}
