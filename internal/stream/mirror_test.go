package stream

import (
	"reflect"
	"testing"
)

// feedN feeds events 1..n with distinct payloads and upstream wall
// stamps into the mirror.
func feedN(m *Mirror, from, to uint64) {
	for seq := from; seq <= to; seq++ {
		m.Feed(Event{Seq: seq, Type: OpStarted, T: float64(seq), Wall: 100 + float64(seq)})
	}
}

// drain collects every event the subscriber can produce until
// end-of-stream or max events.
func mirrorDrain(sub *Sub, max int) []Event {
	stop := make(chan struct{})
	close(stop)
	var out []Event
	for len(out) < max {
		ev, ok := sub.Next(stop)
		if !ok {
			break
		}
		out = append(out, ev)
	}
	return out
}

// TestMirrorVerbatimIngest pins the reason Mirror exists: fed events
// keep their upstream sequence numbers AND wall stamps, unlike Publish
// which re-assigns both.
func TestMirrorVerbatimIngest(t *testing.T) {
	m := NewMirror(8)
	feedN(m, 1, 3)
	m.Close()
	evs := mirrorDrain(m.Subscribe(0), 10)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		want := Event{Seq: uint64(i + 1), Type: OpStarted, T: float64(i + 1), Wall: 100 + float64(i+1)}
		if !reflect.DeepEqual(ev, want) {
			t.Fatalf("event %d = %+v, want %+v (verbatim, no re-stamping)", i, ev, want)
		}
	}
	if m.Last() != 3 {
		t.Fatalf("Last() = %d, want 3", m.Last())
	}
}

// TestMirrorDropsReplayedDuplicates models a relay reconnect that
// resumes with an overlap: already-mirrored sequence numbers must be
// dropped so subscribers never see a duplicate.
func TestMirrorDropsReplayedDuplicates(t *testing.T) {
	m := NewMirror(8)
	feedN(m, 1, 4)
	feedN(m, 2, 6) // overlapping replay after a reconnect
	m.Close()
	evs := mirrorDrain(m.Subscribe(0), 10)
	if len(evs) != 6 {
		t.Fatalf("got %d events, want 6", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
}

// TestMirrorUpstreamGapAdvancesWindow pins the gap pass-through rule:
// an upstream gap event advances the mirror window, and a subscriber
// positioned before it sees one locally synthesized gap covering
// exactly the upstream-reported range — never a relay-invented one.
func TestMirrorUpstreamGapAdvancesWindow(t *testing.T) {
	m := NewMirror(8)
	feedN(m, 1, 2)
	m.Feed(Event{Type: Gap, Gap: &GapInfo{From: 3, To: 5}})
	feedN(m, 6, 7)
	m.Close()

	sub := m.Subscribe(2)
	evs := mirrorDrain(sub, 10)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want gap + 2 live: %+v", len(evs), evs)
	}
	if evs[0].Type != Gap || evs[0].Gap == nil || evs[0].Gap.From != 3 || evs[0].Gap.To != 5 {
		t.Fatalf("first event = %+v, want gap [3,5]", evs[0])
	}
	if evs[1].Seq != 6 || evs[2].Seq != 7 {
		t.Fatalf("post-gap events have seqs %d,%d, want 6,7", evs[1].Seq, evs[2].Seq)
	}
}

// TestMirrorImplicitJumpIsAGap: an upstream that skips ahead without an
// explicit gap frame (the gap frame itself was lost) is treated as the
// gap it implies. Advancing pushes the pre-gap events out of the window
// into the backfill tier — with the relay's upstream re-fetch installed,
// a late subscriber recovers them and the residual gap names exactly
// the range the upstream lost.
func TestMirrorImplicitJumpIsAGap(t *testing.T) {
	m := NewMirror(8)
	feedN(m, 1, 2)
	m.Feed(Event{Seq: 5, Type: OpStarted, T: 5})
	m.SetBackfill(func(from, to uint64) []Event {
		var out []Event
		for seq := from; seq <= to && seq <= 2; seq++ {
			out = append(out, Event{Seq: seq, Type: OpStarted, T: float64(seq), Wall: 100 + float64(seq)})
		}
		return out
	})
	m.Close()
	evs := mirrorDrain(m.Subscribe(0), 10)
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 2 + gap + 1: %+v", len(evs), evs)
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("backfilled prefix has seqs %d,%d, want 1,2", evs[0].Seq, evs[1].Seq)
	}
	if evs[2].Type != Gap || evs[2].Gap == nil || evs[2].Gap.From != 3 || evs[2].Gap.To != 4 {
		t.Fatalf("event 2 = %+v, want gap [3,4]", evs[2])
	}
	if evs[3].Seq != 5 {
		t.Fatalf("event 3 seq = %d, want 5", evs[3].Seq)
	}
}

// TestMirrorBackfillOnOverflow: events pushed out of the mirror window
// are recovered through the backfill hook (a relay's bounded upstream
// re-fetch), so a late subscriber replays in full without a gap.
func TestMirrorBackfillOnOverflow(t *testing.T) {
	m := NewMirror(4)
	var all []Event
	for seq := uint64(1); seq <= 10; seq++ {
		ev := Event{Seq: seq, Type: OpStarted, T: float64(seq)}
		all = append(all, ev)
		m.Feed(ev)
	}
	m.SetBackfill(func(from, to uint64) []Event {
		var out []Event
		for _, ev := range all {
			if ev.Seq >= from && ev.Seq <= to {
				out = append(out, ev)
			}
		}
		return out
	})
	m.Close()
	evs := mirrorDrain(m.Subscribe(0), 20)
	if len(evs) != 10 {
		t.Fatalf("got %d events, want all 10 via backfill: %+v", len(evs), evs)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
}

// TestMirrorFeedAfterClose is a no-op, matching Publish-after-Close.
func TestMirrorFeedAfterClose(t *testing.T) {
	m := NewMirror(4)
	feedN(m, 1, 2)
	m.Close()
	feedN(m, 3, 3)
	if m.Last() != 2 {
		t.Fatalf("Last() = %d after post-close feed, want 2", m.Last())
	}
}
