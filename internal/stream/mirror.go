package stream

// Mirror is the proxy-side adapter of a Ring: a federation gateway (or
// any other relay) replicating an upstream job's event stream feeds the
// events it receives into a Mirror, and local subscribers get the full
// Ring contract — bounded replay window, Subscribe/Next, Last-Event-ID
// resume — against the mirrored stream. The critical difference from
// Publish is that Feed ingests events *verbatim*: the upstream ring
// already assigned sequence numbers and wall stamps, and re-stamping
// either would break resume cursors (and the bit-identity of the
// relayed stream). Out-of-order feeds are normalized: duplicates from
// an overlapping reconnect replay are dropped, and a jump past the next
// expected sequence number — which only happens when the upstream
// itself reported a gap — advances the window so local subscribers see
// a gap event covering exactly the range the upstream lost.
type Mirror struct {
	ring *Ring
}

// NewMirror builds a mirror retaining at most capacity events (0 or
// negative selects DefaultCapacity).
func NewMirror(capacity int) *Mirror {
	return &Mirror{ring: NewRing(capacity)}
}

// Feed ingests one upstream event, preserving its sequence number and
// wall stamp. Events at the next expected sequence number are stored;
// already-seen sequence numbers (an overlapping resume replay) are
// dropped; an upstream gap event — or an implicit jump past the
// expected number — advances the window so subscribers positioned
// before it receive a locally synthesized gap for exactly the
// upstream-reported range, per the proxying rule that a relay never
// invents gaps of its own. Synthetic upstream events other than gaps
// (shutdown, Seq 0) are ignored: they describe the upstream connection,
// not the job. Feeding a closed mirror is a no-op.
func (m *Mirror) Feed(ev Event) {
	r := m.ring
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	if ev.Type == Gap && ev.Gap != nil {
		r.advanceLocked(ev.Gap.To + 1)
		return
	}
	if ev.Seq == 0 || ev.Seq < r.next {
		return
	}
	if ev.Seq > r.next {
		// The upstream skipped ahead without an explicit gap event (a
		// resume that lost the gap frame); treat the jump as the gap.
		r.advanceLocked(ev.Seq)
	}
	r.buf[int((ev.Seq-1)%uint64(len(r.buf)))] = ev
	r.next = ev.Seq + 1
	if r.tee != nil {
		r.tee(ev)
	}
	if r.next-r.first > uint64(len(r.buf)) {
		r.first = r.next - uint64(len(r.buf))
	}
	r.notifyLocked()
}

// advanceLocked moves the window start and the next expected sequence
// number forward to seq without storing anything. Retained events
// before seq leave the window (the backfill tier recovers them, as on
// any overflow), so subscribers whose cursor lies before seq observe a
// gap event for exactly the subrange of [cursor+1, seq-1] that no
// backfill can produce. Caller holds r.mu.
func (r *Ring) advanceLocked(seq uint64) {
	if seq <= r.next {
		return
	}
	r.next = seq
	if r.first < seq {
		r.first = seq
	}
	r.notifyLocked()
}

// SetBackfill installs the recovery source for events that left the
// mirror window — for a relay, typically a bounded re-fetch from the
// upstream daemon. Semantics as Ring.SetBackfill.
func (m *Mirror) SetBackfill(fn func(from, to uint64) []Event) { m.ring.SetBackfill(fn) }

// Subscribe attaches a subscriber resuming after the given sequence
// number, exactly as Ring.Subscribe.
func (m *Mirror) Subscribe(after uint64) *Sub { return m.ring.Subscribe(after) }

// Last returns the highest sequence number fed so far (0 when nothing
// was fed) — the resume cursor a relay reconnects with.
func (m *Mirror) Last() uint64 { return m.ring.Last() }

// Close marks the mirrored stream complete: subscribers drain the
// retained events and see end-of-stream. Idempotent.
func (m *Mirror) Close() { m.ring.Close() }
