// Package parallel is the simulator's worker-pool primitive: chunked
// data-parallel loops over index ranges, sized to the host with a
// GOMAXPROCS default and a deterministic serial fallback at degree 1.
//
// The platform it models is massively parallel by construction — >100k
// electrodes forming tens of thousands of independent DEP cages — so the
// hot loops of the simulation (per-particle Langevin steps, per-site
// sensor evaluations, per-experiment benchmark runs) are embarrassingly
// parallel. The contract throughout the framework is that parallelism
// NEVER changes results: stochastic loop bodies must draw noise from
// per-index rng.Substream streams (see ForRNG), not a shared Source, so
// any worker count produces bit-identical output for a fixed seed.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"biochip/internal/rng"
)

// Degree normalizes a parallelism knob: values < 1 mean "use the host",
// i.e. runtime.GOMAXPROCS(0); anything else is returned unchanged.
func Degree(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// chunkSize picks a grain that amortizes scheduling overhead while
// keeping the tail balanced: ~4 chunks per worker, at least 1.
func chunkSize(workers, n int) int {
	c := n / (workers * 4)
	if c < 1 {
		c = 1
	}
	return c
}

// ForChunks invokes fn on disjoint contiguous ranges [start, end) that
// exactly cover [0, n), using up to Degree(workers) goroutines. With
// workers == 1 (or n small enough) it degenerates to a single in-place
// call — no goroutines, no synchronization. fn must be safe to call
// concurrently on disjoint ranges.
func ForChunks(workers, n int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	workers = Degree(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	chunk := chunkSize(workers, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				end := int(next.Add(int64(chunk)))
				start := end - chunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				fn(start, end)
			}
		}()
	}
	wg.Wait()
}

// For runs fn(i) for every i in [0, n), fanning out across up to
// Degree(workers) goroutines. fn must be safe to call concurrently for
// distinct indices.
func For(workers, n int, fn func(i int)) {
	ForChunks(workers, n, func(start, end int) {
		for i := start; i < end; i++ {
			fn(i)
		}
	})
}

// ForRNG runs fn(i, src) for every i in [0, n) where src is the
// deterministic per-index substream rng.Substream(seed, i). Results are
// independent of the worker count and of index execution order — the
// canonical way to parallelize a stochastic loop without changing its
// output.
func ForRNG(workers, n int, seed uint64, fn func(i int, src *rng.Source)) {
	ForChunks(workers, n, func(start, end int) {
		for i := start; i < end; i++ {
			fn(i, rng.Substream(seed, uint64(i)))
		}
	})
}
