package parallel

import "sync"

// Deque is a thread-safe double-ended work queue, the building block of
// work-stealing dispatch: an owner submits with PushBack and drains in
// FIFO order with PopFront, while idle thieves take from the opposite
// end with StealBack. Stealing from the back keeps the front of the
// owner's queue — the oldest work — untouched, so per-queue FIFO
// fairness survives stealing, and a thief grabs the job that would
// otherwise wait longest.
//
// The zero value is an empty, ready-to-use deque.
type Deque[T any] struct {
	mu    sync.Mutex
	items []T
}

// PushBack appends an item at the back of the deque.
func (d *Deque[T]) PushBack(v T) {
	d.mu.Lock()
	d.items = append(d.items, v)
	d.mu.Unlock()
}

// PopFront removes and returns the oldest item, or reports false when
// the deque is empty.
func (d *Deque[T]) PopFront() (T, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var zero T
	if len(d.items) == 0 {
		return zero, false
	}
	v := d.items[0]
	d.items[0] = zero // release the reference
	d.items = d.items[1:]
	if len(d.items) == 0 {
		d.items = nil // let the drained backing array go
	}
	return v, true
}

// StealBack removes and returns the newest item, or reports false when
// the deque is empty. Thieves call this so the owner's FIFO front is
// left alone.
func (d *Deque[T]) StealBack() (T, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var zero T
	if len(d.items) == 0 {
		return zero, false
	}
	last := len(d.items) - 1
	v := d.items[last]
	d.items[last] = zero
	d.items = d.items[:last]
	return v, true
}

// Len returns the number of queued items.
func (d *Deque[T]) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.items)
}
