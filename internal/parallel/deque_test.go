package parallel

import (
	"sync"
	"testing"
)

func TestDequeFIFOFront(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 5; i++ {
		d.PushBack(i)
	}
	if d.Len() != 5 {
		t.Fatalf("Len = %d, want 5", d.Len())
	}
	for i := 0; i < 5; i++ {
		v, ok := d.PopFront()
		if !ok || v != i {
			t.Fatalf("PopFront #%d = %d,%v", i, v, ok)
		}
	}
	if _, ok := d.PopFront(); ok {
		t.Fatal("PopFront on empty deque succeeded")
	}
}

func TestDequeStealTakesNewest(t *testing.T) {
	var d Deque[string]
	d.PushBack("old")
	d.PushBack("mid")
	d.PushBack("new")
	if v, ok := d.StealBack(); !ok || v != "new" {
		t.Fatalf("StealBack = %q,%v, want new", v, ok)
	}
	if v, ok := d.PopFront(); !ok || v != "old" {
		t.Fatalf("PopFront = %q,%v, want old", v, ok)
	}
	if v, ok := d.StealBack(); !ok || v != "mid" {
		t.Fatalf("StealBack = %q,%v, want mid", v, ok)
	}
	if _, ok := d.StealBack(); ok {
		t.Fatal("StealBack on empty deque succeeded")
	}
}

// TestDequeConcurrent hammers one deque from an owner and many thieves;
// under -race this is the data-safety proof, and every pushed item must
// come out exactly once.
func TestDequeConcurrent(t *testing.T) {
	const n = 2000
	var d Deque[int]
	var mu sync.Mutex
	seen := make(map[int]int, n)
	var wg sync.WaitGroup
	record := func(v int) {
		mu.Lock()
		seen[v]++
		mu.Unlock()
	}
	wg.Add(1)
	go func() { // owner
		defer wg.Done()
		for i := 0; i < n; i++ {
			d.PushBack(i)
			if i%3 == 0 {
				if v, ok := d.PopFront(); ok {
					record(v)
				}
			}
		}
	}()
	for w := 0; w < 4; w++ { // thieves
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if v, ok := d.StealBack(); ok {
					record(v)
				}
			}
		}()
	}
	wg.Wait()
	for { // drain what the racing thieves missed
		v, ok := d.PopFront()
		if !ok {
			break
		}
		record(v)
	}
	for i := 0; i < n; i++ {
		if seen[i] != 1 {
			t.Fatalf("item %d seen %d times", i, seen[i])
		}
	}
}
