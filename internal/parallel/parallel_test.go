package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"

	"biochip/internal/rng"
)

func TestDegree(t *testing.T) {
	if got := Degree(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Degree(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Degree(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Degree(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Degree(5); got != 5 {
		t.Errorf("Degree(5) = %d", got)
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		for _, n := range []int{0, 1, 7, 100, 1000} {
			counts := make([]atomic.Int32, n)
			For(workers, n, func(i int) { counts[i].Add(1) })
			for i := range counts {
				if c := counts[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForChunksCoverAndDisjoint(t *testing.T) {
	const n = 137
	counts := make([]atomic.Int32, n)
	ForChunks(4, n, func(start, end int) {
		if start < 0 || end > n || start >= end {
			t.Errorf("bad chunk [%d,%d)", start, end)
		}
		for i := start; i < end; i++ {
			counts[i].Add(1)
		}
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	For(4, 0, func(int) { called = true })
	For(4, -5, func(int) { called = true })
	if called {
		t.Error("fn must not run for n <= 0")
	}
}

func TestForRNGDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 64
	draw := func(workers int) []float64 {
		out := make([]float64, n)
		ForRNG(workers, n, 12345, func(i int, src *rng.Source) {
			out[i] = src.StdNormal() + src.Float64()
		})
		return out
	}
	serial := draw(1)
	for _, workers := range []int{2, 4, 16} {
		got := draw(workers)
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: index %d differs: %g vs %g", workers, i, got[i], serial[i])
			}
		}
	}
}
