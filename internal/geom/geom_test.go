package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVec2Basics(t *testing.T) {
	a, b := V2(3, 4), V2(-1, 2)
	if got := a.Add(b); got != V2(2, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != V2(4, 2) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Norm(); got != 5 {
		t.Errorf("Norm = %g", got)
	}
	if got := a.Dot(b); got != 5 {
		t.Errorf("Dot = %g", got)
	}
	if got := a.Cross(b); got != 10 {
		t.Errorf("Cross = %g", got)
	}
	if got := a.Unit().Norm(); math.Abs(got-1) > 1e-12 {
		t.Errorf("Unit norm = %g", got)
	}
	if got := (Vec2{}).Unit(); got != (Vec2{}) {
		t.Errorf("zero Unit = %v", got)
	}
}

func TestVec3Basics(t *testing.T) {
	a, b := V3(1, 0, 0), V3(0, 1, 0)
	if got := a.Cross(b); got != V3(0, 0, 1) {
		t.Errorf("Cross = %v", got)
	}
	if got := a.Add(b).Norm(); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("Norm = %g", got)
	}
	if got := V3(2, 3, 4).XY(); got != V2(2, 3) {
		t.Errorf("XY = %v", got)
	}
}

func TestVec2NormProperty(t *testing.T) {
	f := func(x, y float64) bool {
		const lim = 1e150 // avoid float64 overflow when squaring
		if math.IsNaN(x) || math.IsNaN(y) || math.Abs(x) > lim || math.Abs(y) > lim {
			return true
		}
		v := V2(x, y)
		n2 := v.Norm2()
		n := v.Norm()
		return n >= 0 && (n2 == 0 || math.Abs(n*n-n2) <= 1e-9*n2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		const lim = 1e6
		for _, v := range []float64{ax, ay, bx, by} {
			if math.IsNaN(v) || math.Abs(v) > lim {
				return true
			}
		}
		a, b := V2(ax, ay), V2(bx, by)
		return a.Add(b).Norm() <= a.Norm()+b.Norm()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellDistances(t *testing.T) {
	a, b := C(0, 0), C(3, -4)
	if got := a.Manhattan(b); got != 7 {
		t.Errorf("Manhattan = %d", got)
	}
	if got := a.Chebyshev(b); got != 4 {
		t.Errorf("Chebyshev = %d", got)
	}
	if got := C(2, 5).Center(20e-6); got != V2(40e-6, 100e-6) {
		t.Errorf("Center = %v", got)
	}
}

func TestDirSteps(t *testing.T) {
	c := C(5, 5)
	if c.Step(North) != C(5, 6) || c.Step(South) != C(5, 4) ||
		c.Step(East) != C(6, 5) || c.Step(West) != C(4, 5) || c.Step(Stay) != c {
		t.Fatal("Step deltas wrong")
	}
	for _, d := range Dirs4 {
		if d.Opposite().Opposite() != d {
			t.Errorf("double Opposite of %v != itself", d)
		}
		if c.Step(d).Step(d.Opposite()) != c {
			t.Errorf("step %v then back does not return", d)
		}
	}
	if Stay.Opposite() != Stay {
		t.Error("Stay.Opposite")
	}
}

func TestDirTo(t *testing.T) {
	c := C(1, 1)
	for _, d := range Dirs4 {
		got, ok := c.DirTo(c.Step(d))
		if !ok || got != d {
			t.Errorf("DirTo step %v: got %v ok=%v", d, got, ok)
		}
	}
	if got, ok := c.DirTo(c); !ok || got != Stay {
		t.Errorf("DirTo self = %v,%v", got, ok)
	}
	if _, ok := c.DirTo(C(3, 3)); ok {
		t.Error("DirTo non-adjacent should fail")
	}
}

func TestDirString(t *testing.T) {
	if North.String() != "north" || Stay.String() != "stay" {
		t.Error("Dir strings wrong")
	}
	if Dir(99).String() != "Dir(99)" {
		t.Error("out-of-range Dir string")
	}
}

func TestRectBasics(t *testing.T) {
	r := GridRect(10, 5)
	if r.Cols() != 10 || r.Rows() != 5 || r.Area() != 50 {
		t.Fatalf("GridRect dims wrong: %v", r)
	}
	if !r.Contains(C(0, 0)) || !r.Contains(C(9, 4)) {
		t.Error("Contains corners")
	}
	if r.Contains(C(10, 0)) || r.Contains(C(0, 5)) || r.Contains(C(-1, 0)) {
		t.Error("Contains out-of-range")
	}
}

func TestRectNormalization(t *testing.T) {
	r := NewRect(C(5, 7), C(2, 3))
	if r.Min != C(2, 3) || r.Max != C(5, 7) {
		t.Errorf("NewRect did not normalize: %v", r)
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := NewRect(C(0, 0), C(4, 4))
	b := NewRect(C(2, 2), C(6, 6))
	got := a.Intersect(b)
	if got != NewRect(C(2, 2), C(4, 4)) {
		t.Errorf("Intersect = %v", got)
	}
	if u := a.Union(b); u != NewRect(C(0, 0), C(6, 6)) {
		t.Errorf("Union = %v", u)
	}
	c := NewRect(C(10, 10), C(12, 12))
	if !a.Intersect(c).Empty() {
		t.Error("disjoint Intersect should be empty")
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("Union with empty = %v", got)
	}
}

func TestRectInsetCells(t *testing.T) {
	r := GridRect(4, 4)
	in := r.Inset(1)
	if in != NewRect(C(1, 1), C(3, 3)) {
		t.Errorf("Inset = %v", in)
	}
	if !r.Inset(2).Empty() {
		t.Error("over-inset should be empty")
	}
	cells := GridRect(3, 2).Cells()
	if len(cells) != 6 || cells[0] != C(0, 0) || cells[5] != C(2, 1) {
		t.Errorf("Cells row-major order wrong: %v", cells)
	}
}

func TestRectClampCell(t *testing.T) {
	r := GridRect(10, 10)
	if got := r.ClampCell(C(-5, 20)); got != C(0, 9) {
		t.Errorf("ClampCell = %v", got)
	}
	if got := r.ClampCell(C(3, 3)); got != C(3, 3) {
		t.Errorf("ClampCell interior = %v", got)
	}
}

func TestRectIntersectProperty(t *testing.T) {
	f := func(a0, a1, b0, b1, c0, c1, d0, d1 int8) bool {
		r := NewRect(C(int(a0), int(a1)), C(int(b0), int(b1)))
		s := NewRect(C(int(c0), int(c1)), C(int(d0), int(d1)))
		in := r.Intersect(s)
		// Every cell of the intersection is in both rects.
		for _, c := range in.Cells() {
			if !r.Contains(c) || !s.Contains(c) {
				return false
			}
		}
		return in.Area() <= r.Area() && in.Area() <= s.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPath(t *testing.T) {
	p := Path{C(0, 0), C(1, 0), C(1, 0), C(1, 1)}
	if !p.Valid() {
		t.Fatal("path should be valid")
	}
	if p.Moves() != 2 {
		t.Errorf("Moves = %d", p.Moves())
	}
	if p.Duration() != 3 {
		t.Errorf("Duration = %d", p.Duration())
	}
	if p.At(-1) != C(0, 0) || p.At(1) != C(1, 0) || p.At(99) != C(1, 1) {
		t.Error("At indexing wrong")
	}
	bad := Path{C(0, 0), C(2, 0)}
	if bad.Valid() {
		t.Error("diagonal jump should be invalid")
	}
	if (Path{}).Duration() != 0 || (Path{C(1, 1)}).Duration() != 0 {
		t.Error("degenerate Duration")
	}
}

func TestPolygonAreaCentroid(t *testing.T) {
	sq := RectPolygon(0, 0, 2, 3)
	if got := sq.Area(); math.Abs(got-6) > 1e-12 {
		t.Errorf("Area = %g", got)
	}
	if got := sq.Perimeter(); math.Abs(got-10) > 1e-12 {
		t.Errorf("Perimeter = %g", got)
	}
	c := sq.Centroid()
	if math.Abs(c.X-1) > 1e-12 || math.Abs(c.Y-1.5) > 1e-12 {
		t.Errorf("Centroid = %v", c)
	}
	// Clockwise winding flips the signed area only.
	cw := Polygon{{0, 0}, {0, 3}, {2, 3}, {2, 0}}
	if cw.SignedArea() >= 0 {
		t.Error("clockwise polygon should have negative signed area")
	}
	if math.Abs(cw.Area()-6) > 1e-12 {
		t.Error("Area must be winding-independent")
	}
}

func TestPolygonContains(t *testing.T) {
	tri := Polygon{{0, 0}, {4, 0}, {0, 4}}
	if !tri.Contains(V2(1, 1)) {
		t.Error("interior point reported outside")
	}
	if tri.Contains(V2(3, 3)) {
		t.Error("exterior point reported inside")
	}
	if tri.Contains(V2(-1, -1)) {
		t.Error("far exterior point reported inside")
	}
}

func TestPolygonDegenerate(t *testing.T) {
	if (Polygon{}).Area() != 0 || (Polygon{{1, 1}}).Area() != 0 {
		t.Error("degenerate polygon area should be 0")
	}
	line := Polygon{{0, 0}, {1, 0}}
	c := line.Centroid()
	if math.Abs(c.X-0.5) > 1e-12 || c.Y != 0 {
		t.Errorf("degenerate centroid = %v", c)
	}
}

func TestBoundsVec2(t *testing.T) {
	lo, hi := BoundsVec2([]Vec2{{1, 5}, {-2, 3}, {4, -1}})
	if lo != V2(-2, -1) || hi != V2(4, 5) {
		t.Errorf("Bounds = %v %v", lo, hi)
	}
	lo, hi = BoundsVec2(nil)
	if lo != (Vec2{}) || hi != (Vec2{}) {
		t.Error("empty Bounds should be zero")
	}
}
