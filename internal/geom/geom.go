// Package geom provides the planar and spatial geometry primitives used by
// the biochip framework: real-valued 2-D/3-D vectors for physics, integer
// grid coordinates for the electrode and cage arrays, rectangles for
// regions, and polyline/polygon types for fluidic mask layout.
package geom

import (
	"fmt"
	"math"
)

// Vec2 is a 2-D vector in metres (or any consistent unit).
type Vec2 struct {
	X, Y float64
}

// V2 constructs a Vec2.
func V2(x, y float64) Vec2 { return Vec2{x, y} }

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v − w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns s·v.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product v·w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the scalar z-component of the cross product v × w.
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec2) Norm2() float64 { return v.X*v.X + v.Y*v.Y }

// Unit returns v normalized to unit length; the zero vector is returned
// unchanged.
func (v Vec2) Unit() Vec2 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// String implements fmt.Stringer.
func (v Vec2) String() string { return fmt.Sprintf("(%.4g, %.4g)", v.X, v.Y) }

// Vec3 is a 3-D vector; Z is height above the electrode plane.
type Vec3 struct {
	X, Y, Z float64
}

// V3 constructs a Vec3.
func V3(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v − w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the vector cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Unit returns v normalized to unit length; the zero vector is returned
// unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// XY projects v onto the electrode plane.
func (v Vec3) XY() Vec2 { return Vec2{v.X, v.Y} }

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.4g, %.4g, %.4g)", v.X, v.Y, v.Z)
}

// Cell is an integer coordinate on a regular grid (electrode array or DEP
// cage lattice). Col grows along +X, Row along +Y.
type Cell struct {
	Col int `json:"col"`
	Row int `json:"row"`
}

// C constructs a grid Cell.
func C(col, row int) Cell { return Cell{col, row} }

// Add returns the componentwise sum.
func (c Cell) Add(d Cell) Cell { return Cell{c.Col + d.Col, c.Row + d.Row} }

// Sub returns the componentwise difference.
func (c Cell) Sub(d Cell) Cell { return Cell{c.Col - d.Col, c.Row - d.Row} }

// Manhattan returns the L1 distance between c and d.
func (c Cell) Manhattan(d Cell) int {
	return absInt(c.Col-d.Col) + absInt(c.Row-d.Row)
}

// Chebyshev returns the L∞ distance between c and d.
func (c Cell) Chebyshev(d Cell) int {
	dc, dr := absInt(c.Col-d.Col), absInt(c.Row-d.Row)
	if dc > dr {
		return dc
	}
	return dr
}

// Center returns the physical centre of the cell for a grid with the given
// pitch whose cell (0,0) is centred at origin.
func (c Cell) Center(pitch float64) Vec2 {
	return Vec2{float64(c.Col) * pitch, float64(c.Row) * pitch}
}

// String implements fmt.Stringer.
func (c Cell) String() string { return fmt.Sprintf("[%d,%d]", c.Col, c.Row) }

// Dir is one of the four lattice directions plus Stay.
type Dir int

// The five possible single-step moves of a DEP cage.
const (
	Stay Dir = iota
	North
	South
	East
	West
)

var dirNames = [...]string{"stay", "north", "south", "east", "west"}

// String implements fmt.Stringer.
func (d Dir) String() string {
	if d < 0 || int(d) >= len(dirNames) {
		return fmt.Sprintf("Dir(%d)", int(d))
	}
	return dirNames[d]
}

// Delta returns the grid displacement of one step in direction d.
func (d Dir) Delta() Cell {
	switch d {
	case North:
		return Cell{0, 1}
	case South:
		return Cell{0, -1}
	case East:
		return Cell{1, 0}
	case West:
		return Cell{-1, 0}
	default:
		return Cell{0, 0}
	}
}

// Opposite returns the reverse direction; Stay is its own opposite.
func (d Dir) Opposite() Dir {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	default:
		return Stay
	}
}

// Dirs4 lists the four cardinal directions in deterministic order.
var Dirs4 = [4]Dir{North, South, East, West}

// Step returns c moved one step in direction d.
func (c Cell) Step(d Dir) Cell { return c.Add(d.Delta()) }

// DirTo returns the direction of the single step from c to the adjacent
// cell d, and ok=false if d is not adjacent (or equal) to c.
func (c Cell) DirTo(d Cell) (Dir, bool) {
	diff := d.Sub(c)
	switch diff {
	case Cell{0, 0}:
		return Stay, true
	case Cell{0, 1}:
		return North, true
	case Cell{0, -1}:
		return South, true
	case Cell{1, 0}:
		return East, true
	case Cell{-1, 0}:
		return West, true
	}
	return Stay, false
}

// Rect is an axis-aligned half-open grid rectangle: cells with
// Min.Col ≤ Col < Max.Col and Min.Row ≤ Row < Max.Row.
type Rect struct {
	Min, Max Cell
}

// NewRect builds a Rect from any two corner cells (inclusive of the lower
// corner, exclusive of the upper).
func NewRect(a, b Cell) Rect {
	if a.Col > b.Col {
		a.Col, b.Col = b.Col, a.Col
	}
	if a.Row > b.Row {
		a.Row, b.Row = b.Row, a.Row
	}
	return Rect{a, b}
}

// GridRect returns the rectangle covering a cols×rows grid anchored at the
// origin.
func GridRect(cols, rows int) Rect {
	return Rect{Cell{0, 0}, Cell{cols, rows}}
}

// Contains reports whether cell c lies inside r.
func (r Rect) Contains(c Cell) bool {
	return c.Col >= r.Min.Col && c.Col < r.Max.Col &&
		c.Row >= r.Min.Row && c.Row < r.Max.Row
}

// Cols returns the width of r in cells.
func (r Rect) Cols() int { return r.Max.Col - r.Min.Col }

// Rows returns the height of r in cells.
func (r Rect) Rows() int { return r.Max.Row - r.Min.Row }

// Area returns the number of cells in r.
func (r Rect) Area() int {
	c, w := r.Cols(), r.Rows()
	if c <= 0 || w <= 0 {
		return 0
	}
	return c * w
}

// Empty reports whether r contains no cells.
func (r Rect) Empty() bool { return r.Area() == 0 }

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Cell{maxInt(r.Min.Col, s.Min.Col), maxInt(r.Min.Row, s.Min.Row)},
		Cell{minInt(r.Max.Col, s.Max.Col), minInt(r.Max.Row, s.Max.Row)},
	}
	if out.Min.Col >= out.Max.Col || out.Min.Row >= out.Max.Row {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Cell{minInt(r.Min.Col, s.Min.Col), minInt(r.Min.Row, s.Min.Row)},
		Cell{maxInt(r.Max.Col, s.Max.Col), maxInt(r.Max.Row, s.Max.Row)},
	}
}

// Inset shrinks r by n cells on every side.
func (r Rect) Inset(n int) Rect {
	out := Rect{
		Cell{r.Min.Col + n, r.Min.Row + n},
		Cell{r.Max.Col - n, r.Max.Row - n},
	}
	if out.Min.Col >= out.Max.Col || out.Min.Row >= out.Max.Row {
		return Rect{}
	}
	return out
}

// Cells returns every cell in r in row-major order.
func (r Rect) Cells() []Cell {
	out := make([]Cell, 0, r.Area())
	for row := r.Min.Row; row < r.Max.Row; row++ {
		for col := r.Min.Col; col < r.Max.Col; col++ {
			out = append(out, Cell{col, row})
		}
	}
	return out
}

// ClampCell returns the cell in r nearest to c (r must be non-empty).
func (r Rect) ClampCell(c Cell) Cell {
	return Cell{
		clampInt(c.Col, r.Min.Col, r.Max.Col-1),
		clampInt(c.Row, r.Min.Row, r.Max.Row-1),
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("%v..%v", r.Min, r.Max)
}

// Path is a sequence of grid cells; consecutive cells must be identical or
// 4-adjacent for a valid single-step cage trajectory.
type Path []Cell

// Valid reports whether every consecutive pair in the path is either equal
// (a wait step) or 4-adjacent.
func (p Path) Valid() bool {
	for i := 1; i < len(p); i++ {
		if _, ok := p[i-1].DirTo(p[i]); !ok {
			return false
		}
	}
	return true
}

// Moves returns the number of non-wait steps.
func (p Path) Moves() int {
	n := 0
	for i := 1; i < len(p); i++ {
		if p[i] != p[i-1] {
			n++
		}
	}
	return n
}

// Duration returns the number of time steps spanned by the path
// (len−1, or 0 for an empty/singleton path).
func (p Path) Duration() int {
	if len(p) <= 1 {
		return 0
	}
	return len(p) - 1
}

// At returns the cell occupied at time step t, holding the final position
// after the path ends.
func (p Path) At(t int) Cell {
	if len(p) == 0 {
		return Cell{}
	}
	if t < 0 {
		return p[0]
	}
	if t >= len(p) {
		return p[len(p)-1]
	}
	return p[t]
}

// Polygon is a closed planar polygon given by its vertices in order
// (implicitly closed). Used for fluidic mask features.
type Polygon []Vec2

// Area returns the absolute enclosed area (shoelace formula).
func (pg Polygon) Area() float64 {
	return math.Abs(pg.SignedArea())
}

// SignedArea returns the signed area: positive for counter-clockwise
// winding.
func (pg Polygon) SignedArea() float64 {
	if len(pg) < 3 {
		return 0
	}
	sum := 0.0
	for i := range pg {
		j := (i + 1) % len(pg)
		sum += pg[i].Cross(pg[j])
	}
	return sum / 2
}

// Perimeter returns the closed-loop perimeter length.
func (pg Polygon) Perimeter() float64 {
	if len(pg) < 2 {
		return 0
	}
	sum := 0.0
	for i := range pg {
		j := (i + 1) % len(pg)
		sum += pg[i].Dist(pg[j])
	}
	return sum
}

// Centroid returns the area centroid of the polygon; for degenerate
// polygons it returns the vertex mean.
func (pg Polygon) Centroid() Vec2 {
	a := pg.SignedArea()
	if len(pg) == 0 {
		return Vec2{}
	}
	if math.Abs(a) < 1e-300 {
		var m Vec2
		for _, v := range pg {
			m = m.Add(v)
		}
		return m.Scale(1 / float64(len(pg)))
	}
	var cx, cy float64
	for i := range pg {
		j := (i + 1) % len(pg)
		w := pg[i].Cross(pg[j])
		cx += (pg[i].X + pg[j].X) * w
		cy += (pg[i].Y + pg[j].Y) * w
	}
	return Vec2{cx / (6 * a), cy / (6 * a)}
}

// Contains reports whether point p is strictly inside the polygon
// (even-odd rule; points exactly on an edge are implementation-defined).
func (pg Polygon) Contains(p Vec2) bool {
	inside := false
	n := len(pg)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		vi, vj := pg[i], pg[j]
		if (vi.Y > p.Y) != (vj.Y > p.Y) {
			xCross := vi.X + (p.Y-vi.Y)/(vj.Y-vi.Y)*(vj.X-vi.X)
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// BoundsVec2 returns the min and max corners of a point set.
func BoundsVec2(pts []Vec2) (lo, hi Vec2) {
	if len(pts) == 0 {
		return Vec2{}, Vec2{}
	}
	lo, hi = pts[0], pts[0]
	for _, p := range pts[1:] {
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
	}
	return lo, hi
}

// RectPolygon builds the rectangle polygon with corners (x0,y0)-(x1,y1).
func RectPolygon(x0, y0, x1, y1 float64) Polygon {
	return Polygon{{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
