// Package cage provides the DEP-cage abstraction layer between the raw
// electrode array and the manipulation planner: cages live at electrode
// grid positions, a legal layout keeps them separated so their 3×3
// patterns do not merge, and a layout compiles to an electrode.Frame.
//
// This is the instruction-set level of the platform: the paper's
// "changing the pattern of voltages ... the DEP cages can be shifted,
// thus dragging along the trapped particles" becomes a sequence of
// layouts, each one frame programmed into the array.
package cage

import (
	"fmt"
	"sort"

	"biochip/internal/electrode"
	"biochip/internal/geom"
)

// MinSeparation is the minimum Chebyshev distance between two cage
// centres for their 3×3 patterns to remain independent closed cages.
// At distance 2 the patterns share boundary in-phase electrodes but keep
// distinct minima; below 2 they merge into one trap.
const MinSeparation = 2

// Margin is the electrode border a cage centre must keep from the array
// edge so its full 3×3 pattern fits on silicon.
const Margin = 1

// Layout is a set of cages on an electrode grid, keyed by an opaque cage
// ID chosen by the caller (e.g. the trapped particle's ID).
type Layout struct {
	cols, rows int
	pos        map[int]geom.Cell
	occ        map[geom.Cell]int
}

// NewLayout creates an empty layout for a cols×rows electrode array.
func NewLayout(cols, rows int) (*Layout, error) {
	if cols < 2*Margin+1 || rows < 2*Margin+1 {
		return nil, fmt.Errorf("cage: array %dx%d too small for any cage", cols, rows)
	}
	return &Layout{
		cols: cols, rows: rows,
		pos: make(map[int]geom.Cell),
		occ: make(map[geom.Cell]int),
	}, nil
}

// Cols returns the electrode-grid width.
func (l *Layout) Cols() int { return l.cols }

// Rows returns the electrode-grid height.
func (l *Layout) Rows() int { return l.rows }

// InteriorBounds returns the rectangle of legal cage-centre positions.
func (l *Layout) InteriorBounds() geom.Rect {
	return geom.GridRect(l.cols, l.rows).Inset(Margin)
}

// Len returns the number of cages.
func (l *Layout) Len() int { return len(l.pos) }

// Position returns the centre of cage id.
func (l *Layout) Position(id int) (geom.Cell, bool) {
	c, ok := l.pos[id]
	return c, ok
}

// IDs returns all cage IDs in ascending order. The order is part of the
// determinism contract: callers iterate it for releases, scans and
// layout programming, so it must not inherit map iteration order.
func (l *Layout) IDs() []int {
	out := make([]int, 0, len(l.pos))
	for id := range l.pos {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// CanPlace reports whether a new cage at c would be legal: inside the
// interior bounds and ≥ MinSeparation from every existing cage (except
// the one with ignoreID, for move legality checks).
func (l *Layout) CanPlace(c geom.Cell, ignoreID int) bool {
	if !l.InteriorBounds().Contains(c) {
		return false
	}
	for dr := -(MinSeparation - 1); dr <= MinSeparation-1; dr++ {
		for dc := -(MinSeparation - 1); dc <= MinSeparation-1; dc++ {
			n := geom.C(c.Col+dc, c.Row+dr)
			if id, ok := l.occ[n]; ok && id != ignoreID {
				return false
			}
		}
	}
	return true
}

// Place adds a cage with the given id at c.
func (l *Layout) Place(id int, c geom.Cell) error {
	if _, exists := l.pos[id]; exists {
		return fmt.Errorf("cage: id %d already placed", id)
	}
	if !l.CanPlace(c, -1) {
		return fmt.Errorf("cage: cannot place cage at %v", c)
	}
	l.pos[id] = c
	l.occ[c] = id
	return nil
}

// Remove deletes cage id (releasing the particle or completing an
// output operation).
func (l *Layout) Remove(id int) error {
	c, ok := l.pos[id]
	if !ok {
		return fmt.Errorf("cage: unknown id %d", id)
	}
	delete(l.pos, id)
	delete(l.occ, c)
	return nil
}

// CanMove reports whether cage id can take one step in direction d while
// keeping the layout legal.
func (l *Layout) CanMove(id int, d geom.Dir) bool {
	c, ok := l.pos[id]
	if !ok {
		return false
	}
	return l.CanPlace(c.Step(d), id)
}

// Move shifts cage id one step in direction d.
func (l *Layout) Move(id int, d geom.Dir) error {
	c, ok := l.pos[id]
	if !ok {
		return fmt.Errorf("cage: unknown id %d", id)
	}
	if d == geom.Stay {
		return nil
	}
	n := c.Step(d)
	if !l.CanPlace(n, id) {
		return fmt.Errorf("cage: move of %d %v from %v blocked", id, d, c)
	}
	delete(l.occ, c)
	l.pos[id] = n
	l.occ[n] = id
	return nil
}

// ApplyMoves performs one synchronous step: every cage in moves shifts
// simultaneously (cages absent from the map stay). The step is legal iff
// the *destination* layout is legal; with MinSeparation ≥ 2, swap and
// follow conflicts are automatically excluded. On error the layout is
// unchanged.
func (l *Layout) ApplyMoves(moves map[int]geom.Dir) error {
	// Compute destinations.
	dest := make(map[int]geom.Cell, len(l.pos))
	for id, c := range l.pos {
		d := moves[id] // zero value Stay for absent ids
		dest[id] = c.Step(d)
	}
	for id := range moves {
		if _, ok := l.pos[id]; !ok {
			return fmt.Errorf("cage: move for unknown id %d", id)
		}
	}
	// Validate destination layout.
	interior := l.InteriorBounds()
	for id, c := range dest {
		if !interior.Contains(c) {
			return fmt.Errorf("cage: %d would leave the array at %v", id, c)
		}
		for other, oc := range dest {
			if other == id {
				continue
			}
			if c.Chebyshev(oc) < MinSeparation {
				return fmt.Errorf("cage: %d and %d would collide at %v/%v", id, other, c, oc)
			}
		}
	}
	// Commit.
	l.occ = make(map[geom.Cell]int, len(dest))
	for id, c := range dest {
		l.pos[id] = c
		l.occ[c] = id
	}
	return nil
}

// Merge removes cage b and repositions cage a at the midpoint rounded
// toward a — the two trapped particles end in one cage (e.g. cell-bead
// pairing). The cages must be within 2·MinSeparation of each other.
func (l *Layout) Merge(a, b int) error {
	ca, ok := l.pos[a]
	if !ok {
		return fmt.Errorf("cage: unknown id %d", a)
	}
	cb, ok := l.pos[b]
	if !ok {
		return fmt.Errorf("cage: unknown id %d", b)
	}
	if ca.Chebyshev(cb) > 2*MinSeparation {
		return fmt.Errorf("cage: %d and %d too far to merge (%v, %v)", a, b, ca, cb)
	}
	mid := geom.C((ca.Col+cb.Col)/2, (ca.Row+cb.Row)/2)
	delete(l.occ, ca)
	delete(l.occ, cb)
	delete(l.pos, b)
	if !l.CanPlace(mid, a) {
		// Fall back to a's position if the midpoint is blocked.
		mid = ca
	}
	l.pos[a] = mid
	l.occ[mid] = a
	return nil
}

// Split creates a second cage next to an existing one — the pattern
// elongates and pinches into two traps, separating a doublet (two
// particles that settled into one cage). The new cage with id newID is
// placed MinSeparation steps from cage id in direction d. Fails when the
// target position is illegal or newID already exists.
func (l *Layout) Split(id, newID int, d geom.Dir) error {
	c, ok := l.pos[id]
	if !ok {
		return fmt.Errorf("cage: unknown id %d", id)
	}
	if _, exists := l.pos[newID]; exists {
		return fmt.Errorf("cage: id %d already placed", newID)
	}
	if d == geom.Stay {
		return fmt.Errorf("cage: split needs a direction")
	}
	target := c
	for i := 0; i < MinSeparation; i++ {
		target = target.Step(d)
	}
	if !l.CanPlace(target, id) {
		return fmt.Errorf("cage: cannot split %d toward %v (target %v blocked)", id, d, target)
	}
	l.pos[newID] = target
	l.occ[target] = newID
	return nil
}

// Compile renders the layout to an electrode frame: PhaseA background
// with the 3×3 cage pattern at every centre.
func (l *Layout) Compile() *electrode.Frame {
	f := electrode.NewFrame(l.cols, l.rows)
	for _, c := range l.pos {
		f.SetCage(c)
	}
	return f
}

// Clone returns a deep copy of the layout.
func (l *Layout) Clone() *Layout {
	out := &Layout{
		cols: l.cols, rows: l.rows,
		pos: make(map[int]geom.Cell, len(l.pos)),
		occ: make(map[geom.Cell]int, len(l.occ)),
	}
	for id, c := range l.pos {
		out.pos[id] = c
		out.occ[c] = id
	}
	return out
}

// GridLayout places n cages on a regular lattice with the given spacing
// (≥ MinSeparation), row-major from the top-left interior corner, IDs
// 0..n-1. It errors when the array cannot hold n cages at that spacing —
// used to reproduce the paper's "tens of thousands of cages" claim.
func GridLayout(cols, rows, n, spacing int) (*Layout, error) {
	if spacing < MinSeparation {
		return nil, fmt.Errorf("cage: spacing %d below minimum %d", spacing, MinSeparation)
	}
	l, err := NewLayout(cols, rows)
	if err != nil {
		return nil, err
	}
	in := l.InteriorBounds()
	id := 0
	for row := in.Min.Row; row < in.Max.Row && id < n; row += spacing {
		for col := in.Min.Col; col < in.Max.Col && id < n; col += spacing {
			if err := l.Place(id, geom.C(col, row)); err != nil {
				return nil, err
			}
			id++
		}
	}
	if id < n {
		return nil, fmt.Errorf("cage: array %dx%d holds only %d cages at spacing %d, need %d",
			cols, rows, id, spacing, n)
	}
	return l, nil
}

// MaxCages returns how many cages fit on a cols×rows array at the given
// spacing.
func MaxCages(cols, rows, spacing int) int {
	if spacing < MinSeparation {
		return 0
	}
	in := geom.GridRect(cols, rows).Inset(Margin)
	if in.Empty() {
		return 0
	}
	nc := (in.Cols() + spacing - 1) / spacing
	nr := (in.Rows() + spacing - 1) / spacing
	return nc * nr
}
