package cage

import (
	"testing"
	"testing/quick"

	"biochip/internal/electrode"
	"biochip/internal/geom"
)

func TestNewLayoutValidation(t *testing.T) {
	if _, err := NewLayout(2, 2); err == nil {
		t.Error("tiny array should be rejected")
	}
	l, err := NewLayout(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Error("new layout should be empty")
	}
}

func TestPlaceAndBounds(t *testing.T) {
	l, _ := NewLayout(10, 10)
	if err := l.Place(1, geom.C(0, 5)); err == nil {
		t.Error("margin violation should fail")
	}
	if err := l.Place(1, geom.C(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Place(1, geom.C(5, 5)); err == nil {
		t.Error("duplicate id should fail")
	}
	if err := l.Place(2, geom.C(2, 2)); err == nil {
		t.Error("separation violation should fail")
	}
	if err := l.Place(2, geom.C(3, 1)); err != nil {
		t.Errorf("distance-2 placement should work: %v", err)
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestRemove(t *testing.T) {
	l, _ := NewLayout(10, 10)
	_ = l.Place(1, geom.C(4, 4))
	if err := l.Remove(1); err != nil {
		t.Fatal(err)
	}
	if err := l.Remove(1); err == nil {
		t.Error("double remove should fail")
	}
	// Space is freed.
	if err := l.Place(2, geom.C(4, 4)); err != nil {
		t.Errorf("freed position should be placeable: %v", err)
	}
}

func TestMoveMechanics(t *testing.T) {
	l, _ := NewLayout(12, 12)
	_ = l.Place(1, geom.C(5, 5))
	if !l.CanMove(1, geom.East) {
		t.Fatal("free move should be allowed")
	}
	if err := l.Move(1, geom.East); err != nil {
		t.Fatal(err)
	}
	if c, _ := l.Position(1); c != geom.C(6, 5) {
		t.Fatalf("position after move = %v", c)
	}
	// Stay is a no-op.
	if err := l.Move(1, geom.Stay); err != nil {
		t.Fatal(err)
	}
	// Blocked by neighbour at distance 2 moving closer.
	_ = l.Place(2, geom.C(8, 5))
	if l.CanMove(1, geom.East) {
		t.Error("move to distance-1 of neighbour must be blocked")
	}
	if err := l.Move(1, geom.East); err == nil {
		t.Error("blocked move should error")
	}
	if l.CanMove(99, geom.East) {
		t.Error("unknown id cannot move")
	}
}

func TestMoveOffEdgeBlocked(t *testing.T) {
	l, _ := NewLayout(10, 10)
	_ = l.Place(1, geom.C(1, 1))
	if l.CanMove(1, geom.West) || l.CanMove(1, geom.South) {
		t.Error("moves into the margin must be blocked")
	}
}

func TestApplyMovesSynchronous(t *testing.T) {
	l, _ := NewLayout(20, 20)
	_ = l.Place(1, geom.C(5, 5))
	_ = l.Place(2, geom.C(7, 5)) // exactly MinSeparation away
	// Both move east together: separation preserved.
	if err := l.ApplyMoves(map[int]geom.Dir{1: geom.East, 2: geom.East}); err != nil {
		t.Fatal(err)
	}
	c1, _ := l.Position(1)
	c2, _ := l.Position(2)
	if c1 != geom.C(6, 5) || c2 != geom.C(8, 5) {
		t.Fatalf("train move wrong: %v %v", c1, c2)
	}
	// 1 alone moving east would close the gap: must fail atomically.
	before := l.Clone()
	if err := l.ApplyMoves(map[int]geom.Dir{1: geom.East}); err == nil {
		t.Fatal("closing move should fail")
	}
	for _, id := range []int{1, 2} {
		a, _ := l.Position(id)
		b, _ := before.Position(id)
		if a != b {
			t.Error("failed ApplyMoves must not mutate layout")
		}
	}
}

func TestApplyMovesUnknownID(t *testing.T) {
	l, _ := NewLayout(10, 10)
	_ = l.Place(1, geom.C(5, 5))
	if err := l.ApplyMoves(map[int]geom.Dir{9: geom.East}); err == nil {
		t.Error("unknown id in moves should fail")
	}
}

func TestApplyMovesEdge(t *testing.T) {
	l, _ := NewLayout(10, 10)
	_ = l.Place(1, geom.C(8, 8))
	if err := l.ApplyMoves(map[int]geom.Dir{1: geom.East}); err == nil {
		t.Error("stepping off the interior must fail")
	}
}

func TestMerge(t *testing.T) {
	l, _ := NewLayout(20, 20)
	_ = l.Place(1, geom.C(5, 5))
	_ = l.Place(2, geom.C(8, 5))
	if err := l.Merge(1, 2); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("after merge Len = %d", l.Len())
	}
	c, ok := l.Position(1)
	if !ok || c != geom.C(6, 5) {
		t.Fatalf("merged cage at %v, want (6,5)", c)
	}
	if _, ok := l.Position(2); ok {
		t.Error("cage 2 should be gone")
	}
}

func TestMergeTooFar(t *testing.T) {
	l, _ := NewLayout(30, 30)
	_ = l.Place(1, geom.C(2, 2))
	_ = l.Place(2, geom.C(20, 20))
	if err := l.Merge(1, 2); err == nil {
		t.Error("distant merge should fail")
	}
	if err := l.Merge(1, 99); err == nil {
		t.Error("unknown id merge should fail")
	}
}

func TestCompileMatchesCageCenters(t *testing.T) {
	l, _ := NewLayout(30, 30)
	want := []geom.Cell{geom.C(3, 3), geom.C(9, 3), geom.C(3, 9), geom.C(20, 20)}
	for i, c := range want {
		if err := l.Place(i, c); err != nil {
			t.Fatal(err)
		}
	}
	f := l.Compile()
	got := f.CageCenters()
	if len(got) != len(want) {
		t.Fatalf("compiled frame has %d cages, want %d", len(got), len(want))
	}
	seen := map[geom.Cell]bool{}
	for _, c := range got {
		seen[c] = true
	}
	for _, c := range want {
		if !seen[c] {
			t.Errorf("cage %v missing from frame", c)
		}
	}
	if f.Count(electrode.PhaseB) != len(want) {
		t.Errorf("PhaseB count = %d", f.Count(electrode.PhaseB))
	}
}

func TestCompileAdjacentCagesKeepDistinctMinima(t *testing.T) {
	l, _ := NewLayout(20, 20)
	_ = l.Place(1, geom.C(5, 5))
	_ = l.Place(2, geom.C(7, 5))
	f := l.Compile()
	if got := len(f.CageCenters()); got != 2 {
		t.Fatalf("two cages at MinSeparation must stay distinct, found %d", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	l, _ := NewLayout(15, 15)
	_ = l.Place(1, geom.C(5, 5))
	c := l.Clone()
	_ = c.Move(1, geom.East)
	orig, _ := l.Position(1)
	if orig != geom.C(5, 5) {
		t.Error("clone mutation leaked into original")
	}
}

func TestGridLayoutPaperScale(t *testing.T) {
	// The paper: >100,000 electrodes host tens of thousands of cages.
	// 320×320 electrodes at spacing 2 → ~25,000 cages.
	cols, rows := 320, 320
	capacity := MaxCages(cols, rows, MinSeparation)
	if capacity < 10000 {
		t.Fatalf("MaxCages = %d; paper claims tens of thousands", capacity)
	}
	l, err := GridLayout(cols, rows, 20000, MinSeparation)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 20000 {
		t.Fatalf("GridLayout placed %d cages", l.Len())
	}
}

func TestGridLayoutErrors(t *testing.T) {
	if _, err := GridLayout(20, 20, 1000, 2); err == nil {
		t.Error("overfull grid should error")
	}
	if _, err := GridLayout(20, 20, 4, 1); err == nil {
		t.Error("sub-minimum spacing should error")
	}
}

func TestMaxCagesDegenerate(t *testing.T) {
	if MaxCages(2, 2, 2) != 0 {
		t.Error("tiny array should hold 0 cages")
	}
	if MaxCages(100, 100, 1) != 0 {
		t.Error("illegal spacing should hold 0 cages")
	}
}

func TestLayoutSeparationInvariantProperty(t *testing.T) {
	// Property: after any sequence of random placements and moves that
	// the API accepts, all pairs stay ≥ MinSeparation apart.
	f := func(seed int64, steps uint8) bool {
		l, _ := NewLayout(16, 16)
		s := int(seed)
		next := func(n int) int {
			s = s*1103515245 + 12345
			v := (s >> 16) % n
			if v < 0 {
				v += n
			}
			return v
		}
		for i := 0; i < 6; i++ {
			_ = l.Place(i, geom.C(1+next(14), 1+next(14)))
		}
		for i := 0; i < int(steps); i++ {
			ids := l.IDs()
			if len(ids) == 0 {
				break
			}
			id := ids[next(len(ids))]
			_ = l.Move(id, geom.Dirs4[next(4)])
		}
		ids := l.IDs()
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, _ := l.Position(ids[i])
				b, _ := l.Position(ids[j])
				if a.Chebyshev(b) < MinSeparation {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestIDsSorted is a regression test for nondeterministic ID order:
// IDs() must be ascending regardless of placement order, because
// ReleaseAll, scans and layout programming iterate it.
func TestIDsSorted(t *testing.T) {
	l, _ := NewLayout(40, 40)
	for i, id := range []int{9, 2, 17, 5, 11, 3} {
		if err := l.Place(id, geom.C(2+4*i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	want := []int{2, 3, 5, 9, 11, 17}
	for run := 0; run < 10; run++ {
		got := l.IDs()
		if len(got) != len(want) {
			t.Fatalf("IDs() = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("run %d: IDs() = %v, want ascending %v", run, got, want)
			}
		}
	}
}
