package cage

import (
	"testing"

	"biochip/internal/geom"
)

func TestSplitCreatesAdjacentCage(t *testing.T) {
	l, _ := NewLayout(20, 20)
	_ = l.Place(1, geom.C(8, 8))
	if err := l.Split(1, 2, geom.East); err != nil {
		t.Fatal(err)
	}
	c2, ok := l.Position(2)
	if !ok || c2 != geom.C(10, 8) {
		t.Fatalf("split cage at %v, want (10,8)", c2)
	}
	// Original cage unmoved.
	if c1, _ := l.Position(1); c1 != geom.C(8, 8) {
		t.Errorf("original cage moved to %v", c1)
	}
	// Both cages resolve in the compiled frame.
	if got := len(l.Compile().CageCenters()); got != 2 {
		t.Errorf("compiled frame has %d cages, want 2", got)
	}
	// Merge undoes split.
	if err := l.Merge(1, 2); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Error("merge after split should leave one cage")
	}
}

func TestSplitValidation(t *testing.T) {
	l, _ := NewLayout(20, 20)
	_ = l.Place(1, geom.C(8, 8))
	if err := l.Split(9, 2, geom.East); err == nil {
		t.Error("unknown source should fail")
	}
	if err := l.Split(1, 1, geom.East); err == nil {
		t.Error("duplicate new id should fail")
	}
	if err := l.Split(1, 2, geom.Stay); err == nil {
		t.Error("stay direction should fail")
	}
	// Blocked target.
	_ = l.Place(3, geom.C(11, 8))
	if err := l.Split(1, 2, geom.East); err == nil {
		t.Error("blocked split should fail")
	}
	// Edge: splitting off the array.
	l2, _ := NewLayout(10, 10)
	_ = l2.Place(1, geom.C(8, 5))
	if err := l2.Split(1, 2, geom.East); err == nil {
		t.Error("split off the interior should fail")
	}
}

func TestSplitPreservesSeparationInvariant(t *testing.T) {
	l, _ := NewLayout(30, 30)
	_ = l.Place(1, geom.C(10, 10))
	_ = l.Place(2, geom.C(14, 10))
	for i, d := range geom.Dirs4 {
		_ = l.Split(1, 10+i, d) // some will fail; that's fine
	}
	ids := l.IDs()
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, _ := l.Position(ids[i])
			b, _ := l.Position(ids[j])
			if a.Chebyshev(b) < MinSeparation {
				t.Fatalf("separation violated between %d and %d", ids[i], ids[j])
			}
		}
	}
}
