package assay

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"biochip/internal/chip"
	"biochip/internal/geom"
	"biochip/internal/particle"
)

func moveTestConfig() chip.Config {
	cfg := chip.DefaultConfig()
	cfg.Array.Cols, cfg.Array.Rows = 40, 40
	cfg.SensorParallelism = 40
	cfg.Parallelism = 1
	cfg.Seed = 77
	return cfg
}

// capturedSim loads, settles and captures a small population, returning
// the simulator plus the sorted trapped IDs.
func capturedSim(t *testing.T, cfg chip.Config) (*chip.Simulator, []int) {
	t.Helper()
	sim, err := chip.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kind := particle.ViableCell()
	if _, err := sim.Load(&kind, 6); err != nil {
		t.Fatal(err)
	}
	sim.Settle(sim.Chamber().Height / (5e-6))
	if _, trapped, err := sim.CaptureAll(); err != nil || trapped == 0 {
		t.Fatalf("capture: %d trapped, err %v", trapped, err)
	}
	ids := sim.Layout().IDs()
	sortInts(ids)
	return sim, ids
}

// moveProgramFor builds a complete load→capture→move→scan program whose
// move targets are the cages the seeded capture actually traps (packed
// lattice goals at the south-west interior corner).
func moveProgramFor(t *testing.T, cfg chip.Config, planner string) Program {
	t.Helper()
	_, ids := capturedSim(t, cfg)
	mv := Move{Planner: planner}
	for i, id := range ids {
		mv.Agents = append(mv.Agents, MoveTarget{ID: id, Goal: geom.C(1+2*i, 1)})
	}
	return Program{
		Name: "move-scan",
		Ops: []Op{
			Load{Kind: particle.ViableCell(), Count: 6},
			Settle{},
			Capture{},
			mv,
			Scan{Averaging: 8},
		},
	}
}

func TestMoveCheckRejections(t *testing.T) {
	cfg := moveTestConfig()
	viable := particle.ViableCell()
	base := []Op{Load{Kind: viable, Count: 4}, Settle{}, Capture{}}
	cases := []struct {
		name string
		op   Move
	}{
		{"before capture", Move{Agents: []MoveTarget{{ID: 0, Goal: geom.C(2, 2)}}}},
		{"no agents", Move{}},
		{"unknown planner", Move{Planner: "warp-drive",
			Agents: []MoveTarget{{ID: 0, Goal: geom.C(2, 2)}}}},
		{"negative id", Move{Agents: []MoveTarget{{ID: -1, Goal: geom.C(2, 2)}}}},
		{"duplicate id", Move{Agents: []MoveTarget{
			{ID: 0, Goal: geom.C(2, 2)}, {ID: 0, Goal: geom.C(8, 8)}}}},
		{"goal in margin", Move{Agents: []MoveTarget{{ID: 0, Goal: geom.C(0, 5)}}}},
		{"goals too close", Move{Agents: []MoveTarget{
			{ID: 0, Goal: geom.C(5, 5)}, {ID: 1, Goal: geom.C(6, 5)}}}},
	}
	for _, tc := range cases {
		ops := base
		if tc.name == "before capture" {
			ops = []Op{Load{Kind: viable, Count: 4}}
		}
		pr := Program{Name: "bad", Ops: append(append([]Op{}, ops...), tc.op)}
		if err := pr.Check(cfg); err == nil {
			t.Errorf("%s: Check accepted invalid move", tc.name)
		}
	}
}

func TestMoveExecutesWithEveryPlannerFamily(t *testing.T) {
	cfg := moveTestConfig()
	for _, planner := range []string{"", "prioritized", "partitioned", "greedy"} {
		pr := moveProgramFor(t, cfg, planner)
		rep, err := Execute(pr, cfg)
		if err != nil {
			t.Fatalf("planner %q: %v", planner, err)
		}
		if len(rep.Routings) != 1 || rep.Routings[0].Op != "move" {
			t.Fatalf("planner %q: routings = %+v", planner, rep.Routings)
		}
		rr := rep.Routings[0]
		if rr.Planner == "" || rr.Agents == 0 {
			t.Errorf("planner %q: empty provenance %+v", planner, rr)
		}
		if rep.Steps < rr.Makespan {
			t.Errorf("planner %q: steps %d < makespan %d", planner, rep.Steps, rr.Makespan)
		}
		// The event log attributes the executed plan to the planner.
		attributed := false
		for _, e := range rep.Events {
			if strings.Contains(e, "executed plan ("+rr.Planner+")") {
				attributed = true
			}
		}
		if !attributed {
			t.Errorf("planner %q: no provenance in event log", planner)
		}
	}
}

func TestMoveUnknownAgentFailsAtRuntime(t *testing.T) {
	cfg := moveTestConfig()
	pr := Program{
		Name: "bad-id",
		Ops: []Op{
			Load{Kind: particle.ViableCell(), Count: 4},
			Settle{},
			Capture{},
			Move{Agents: []MoveTarget{{ID: 999, Goal: geom.C(5, 5)}}},
		},
	}
	if _, err := Execute(pr, cfg); err == nil {
		t.Fatal("moving an id that is not a trapped cage must fail")
	}
}

func TestMoveRecordsPlannerStatsOnDie(t *testing.T) {
	cfg := moveTestConfig()
	pr := moveProgramFor(t, cfg, "partitioned")
	sim, err := chip.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExecuteOn(sim, pr); err != nil {
		t.Fatal(err)
	}
	stats := sim.PlanStats()
	st, ok := stats["partitioned"]
	if !ok {
		t.Fatalf("no partitioned entry in die plan stats: %v", stats)
	}
	if st.Plans != 1 || st.Moves == 0 || st.PlanSeconds <= 0 {
		t.Errorf("plan stats = %+v, want 1 plan with moves and wall time", st)
	}
}

func TestMoveJSONRoundTrip(t *testing.T) {
	pr := Program{
		Name: "wire",
		Ops: []Op{
			Load{Kind: particle.ViableCell(), Count: 2},
			Settle{},
			Capture{},
			Gather{Anchor: geom.C(1, 1), Planner: "windowed"},
			Move{Planner: "partitioned", Agents: []MoveTarget{
				{ID: 0, Goal: geom.C(5, 9)},
				{ID: 1, Goal: geom.C(9, 9)},
			}},
		},
	}
	data, err := json.Marshal(pr)
	if err != nil {
		t.Fatal(err)
	}
	var back Program
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pr, back) {
		t.Fatalf("round trip:\n%#v\nwant\n%#v", back, pr)
	}
	// The wire form uses the documented tags.
	for _, want := range []string{`"op":"move"`, `"planner":"partitioned"`, `"agents":[{"id":0,"col":5,"row":9}`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("wire form missing %s: %s", want, data)
		}
	}
}
