// Package assay provides the protocol level of the platform: an assay is
// a sequence of high-level operations (load a sample, let it settle,
// capture, gather cells into a region, scan, release) that the compiler
// checks statically and the executor runs on a chip.Simulator, invoking
// the routing CAD for every motion step.
//
// This is the level a biologist user of the platform would script at;
// everything below (frames, cages, paths, physics) is generated.
package assay

import (
	"errors"
	"fmt"

	"biochip/internal/cage"
	"biochip/internal/chip"
	"biochip/internal/fab"
	"biochip/internal/geom"
	"biochip/internal/particle"
	"biochip/internal/route"
	"biochip/internal/units"
)

// Op is one assay operation.
type Op interface {
	// Describe returns a human-readable summary.
	Describe() string
	isOp()
}

// Load introduces a particle population.
type Load struct {
	Kind  particle.Kind
	Count int
}

// Describe implements Op.
func (l Load) Describe() string { return fmt.Sprintf("load %d × %s", l.Count, l.Kind.Name) }
func (Load) isOp()              {}

// Settle waits for sedimentation.
type Settle struct {
	// Duration in seconds; 0 means "auto": chamber height over a
	// conservative settling speed.
	Duration float64
}

// Describe implements Op.
func (s Settle) Describe() string {
	if s.Duration == 0 {
		return "settle (auto)"
	}
	return "settle " + units.FormatDuration(s.Duration)
}
func (Settle) isOp() {}

// Capture forms cages and traps everything in the capture zone.
type Capture struct{}

// Describe implements Op.
func (Capture) Describe() string { return "capture all" }
func (Capture) isOp()            {}

// Gather routes every trapped particle into a packed block anchored at
// the given interior corner cell (row-major lattice at MinSeparation).
type Gather struct {
	Anchor geom.Cell
}

// Describe implements Op.
func (g Gather) Describe() string { return fmt.Sprintf("gather at %v", g.Anchor) }
func (Gather) isOp()              {}

// Scan reads all cage sites capacitively.
type Scan struct {
	Averaging int
}

// Describe implements Op.
func (s Scan) Describe() string { return fmt.Sprintf("scan (%dx averaging)", s.Averaging) }
func (Scan) isOp()              {}

// ReleaseAll frees every trapped particle.
type ReleaseAll struct{}

// Describe implements Op.
func (ReleaseAll) Describe() string { return "release all" }
func (ReleaseAll) isOp()            {}

// Probe switches the DEP drive to the given frequency, ejecting trapped
// particles that respond with positive DEP there (label-free selection,
// e.g. viability sorting at a frequency between the two populations'
// crossovers).
type Probe struct {
	Frequency float64
}

// Describe implements Op.
func (p Probe) Describe() string {
	return fmt.Sprintf("DEP probe @ %s", units.Format(p.Frequency, "Hz"))
}
func (Probe) isOp() {}

// Wash exchanges chamber volumes through the fluidic package, removing
// untrapped particles while caged ones hold — the isolation step of
// rare-cell workflows. Pressure defaults to a cell-safe 200 Pa when 0.
type Wash struct {
	// Volumes is the number of chamber volumes exchanged (≥ 1 typical).
	Volumes float64
	// Pressure is the drive pressure in Pa; 0 selects 200 Pa.
	Pressure float64
}

// Describe implements Op.
func (w Wash) Describe() string {
	return fmt.Sprintf("wash %.1f chamber volumes", w.Volumes)
}
func (Wash) isOp() {}

// washDefaultPressure is the cell-safe default drive (2 mbar).
const washDefaultPressure = 200.0

// Program is an ordered assay.
type Program struct {
	Name string
	Ops  []Op
}

// Check statically validates the program against a platform config:
// operation ordering (capture before gather/scan/release), load sizes
// against cage capacity, gather block fit.
func (pr Program) Check(cfg chip.Config) error {
	if len(pr.Ops) == 0 {
		return errors.New("assay: empty program")
	}
	capacity := cage.MaxCages(cfg.Array.Cols, cfg.Array.Rows, cage.MinSeparation)
	loaded := 0
	captured := false
	for i, op := range pr.Ops {
		switch o := op.(type) {
		case Load:
			if o.Count <= 0 {
				return fmt.Errorf("assay: op %d: non-positive load", i)
			}
			if err := o.Kind.Validate(); err != nil {
				return fmt.Errorf("assay: op %d: %w", i, err)
			}
			loaded += o.Count
			if loaded > capacity {
				return fmt.Errorf("assay: op %d: %d particles exceed %d cage capacity",
					i, loaded, capacity)
			}
		case Settle:
			if o.Duration < 0 {
				return fmt.Errorf("assay: op %d: negative settle", i)
			}
		case Capture:
			if loaded == 0 {
				return fmt.Errorf("assay: op %d: capture before any load", i)
			}
			captured = true
		case Gather:
			if !captured {
				return fmt.Errorf("assay: op %d: gather before capture", i)
			}
			if !blockFits(cfg, o.Anchor, loaded) {
				return fmt.Errorf("assay: op %d: gather block at %v cannot hold %d cages",
					i, o.Anchor, loaded)
			}
		case Scan:
			if !captured {
				return fmt.Errorf("assay: op %d: scan before capture", i)
			}
			if o.Averaging < 1 {
				return fmt.Errorf("assay: op %d: averaging must be ≥ 1", i)
			}
		case ReleaseAll:
			if !captured {
				return fmt.Errorf("assay: op %d: release before capture", i)
			}
			captured = false
		case Probe:
			if !captured {
				return fmt.Errorf("assay: op %d: probe before capture", i)
			}
			if o.Frequency <= 0 {
				return fmt.Errorf("assay: op %d: non-positive probe frequency", i)
			}
		case Wash:
			if o.Volumes <= 0 {
				return fmt.Errorf("assay: op %d: non-positive wash volumes", i)
			}
			if o.Pressure < 0 {
				return fmt.Errorf("assay: op %d: negative wash pressure", i)
			}
		default:
			return fmt.Errorf("assay: op %d: unknown operation %T", i, op)
		}
	}
	return nil
}

// blockFits reports whether a row-major MinSeparation lattice of n cells
// anchored at a fits the interior.
func blockFits(cfg chip.Config, a geom.Cell, n int) bool {
	interior := geom.GridRect(cfg.Array.Cols, cfg.Array.Rows).Inset(cage.Margin)
	if !interior.Contains(a) {
		return false
	}
	cells := gatherGoals(interior, a, n)
	return cells != nil
}

// gatherGoals returns n goal cells packed row-major from anchor, or nil.
func gatherGoals(interior geom.Rect, anchor geom.Cell, n int) []geom.Cell {
	out := make([]geom.Cell, 0, n)
	for row := anchor.Row; row < interior.Max.Row && len(out) < n; row += cage.MinSeparation {
		for col := anchor.Col; col < interior.Max.Col && len(out) < n; col += cage.MinSeparation {
			out = append(out, geom.C(col, row))
		}
	}
	if len(out) < n {
		return nil
	}
	return out
}

// ScanRecord is the full detection table of one Scan operation, in
// deterministic site order. Two executions of the same seeded program
// produce bit-identical records regardless of parallelism or which die
// of a shard pool ran them — this is the payload the determinism
// contract is checked against.
type ScanRecord struct {
	// Averaging is the per-pixel sample count used.
	Averaging int `json:"averaging"`
	// Time is the simulated wall-clock cost of the scan (s).
	Time float64 `json:"time"`
	// Detections lists every cage site's verdict.
	Detections []chip.Detection `json:"detections"`
}

// Report summarizes an executed assay.
type Report struct {
	Program string `json:"program"`
	// Duration is total assay wall-clock time (s).
	Duration float64 `json:"duration"`
	// Steps counts routed cage steps (makespan sum over Gather ops).
	Steps int `json:"steps"`
	// Trapped is the particle count after the last Capture.
	Trapped int `json:"trapped"`
	// ScanErrors accumulates detection errors over all scans.
	ScanErrors int `json:"scan_errors"`
	// ScanSites accumulates scanned sites over all scans.
	ScanSites int `json:"scan_sites"`
	// ProbeKept and ProbeEjected accumulate DEP-probe outcomes.
	ProbeKept    int `json:"probe_kept"`
	ProbeEjected int `json:"probe_ejected"`
	// Washed counts untrapped particles removed by Wash operations.
	Washed int `json:"washed"`
	// Scans holds one full detection table per Scan operation.
	Scans []ScanRecord `json:"scans,omitempty"`
	// Events is the simulator log.
	Events []string `json:"events,omitempty"`
}

// Execute compiles and runs the program on a fresh simulator built from
// cfg. The routing planner is Prioritized (the production planner).
func Execute(pr Program, cfg chip.Config) (*Report, error) {
	// Check first: an invalid program must fail fast, before the
	// (potentially calibrating) simulator construction.
	if err := pr.Check(cfg); err != nil {
		return nil, err
	}
	sim, err := chip.New(cfg)
	if err != nil {
		return nil, err
	}
	return ExecuteOn(sim, pr)
}

// ExecuteOn runs the program on an existing simulator, which must be in
// its just-built (or just-Reset) state. It is the engine behind both
// Execute and the sharded assay service, where each die's simulator is
// reused across requests: Reset(seed) + ExecuteOn is bit-identical to
// Execute with cfg.Seed = seed.
func ExecuteOn(sim *chip.Simulator, pr Program) (*Report, error) {
	cfg := sim.Config()
	if err := pr.Check(cfg); err != nil {
		return nil, err
	}
	rep := &Report{Program: pr.Name}
	for i, op := range pr.Ops {
		switch o := op.(type) {
		case Load:
			k := o.Kind
			if _, err := sim.Load(&k, o.Count); err != nil {
				return nil, fmt.Errorf("assay: op %d: %w", i, err)
			}
		case Settle:
			d := o.Duration
			if d == 0 {
				d = sim.Chamber().Height / (5 * units.Micron) // conservative
			}
			sim.Settle(d)
		case Capture:
			if _, trapped, err := sim.CaptureAll(); err != nil {
				return nil, fmt.Errorf("assay: op %d: %w", i, err)
			} else {
				rep.Trapped = trapped
			}
		case Gather:
			if err := runGather(sim, o, rep); err != nil {
				return nil, fmt.Errorf("assay: op %d: %w", i, err)
			}
		case Scan:
			res, err := sim.Scan(o.Averaging)
			if err != nil {
				return nil, fmt.Errorf("assay: op %d: %w", i, err)
			}
			rep.ScanErrors += res.Errors
			rep.ScanSites += len(res.Detections)
			rep.Scans = append(rep.Scans, ScanRecord{
				Averaging:  res.Averaging,
				Time:       res.ScanTime,
				Detections: res.Detections,
			})
		case ReleaseAll:
			for _, id := range sim.Layout().IDs() {
				if err := sim.Release(id); err != nil {
					return nil, fmt.Errorf("assay: op %d: %w", i, err)
				}
			}
		case Probe:
			res, err := sim.ProbeDEPResponse(o.Frequency)
			if err != nil {
				return nil, fmt.Errorf("assay: op %d: %w", i, err)
			}
			rep.ProbeKept += len(res.Kept)
			rep.ProbeEjected += len(res.Lost)
		case Wash:
			pressure := o.Pressure
			if pressure == 0 {
				pressure = washDefaultPressure
			}
			res, err := sim.Flush(o.Volumes, pressure)
			if err != nil {
				return nil, fmt.Errorf("assay: op %d: %w", i, err)
			}
			rep.Washed += res.Removed
		}
	}
	rep.Duration = sim.Clock()
	rep.Events = sim.Log()
	return rep, nil
}

// runGather routes all trapped cages into the packed block.
func runGather(sim *chip.Simulator, g Gather, rep *Report) error {
	ids := sim.Layout().IDs()
	if len(ids) == 0 {
		return nil
	}
	interior := sim.Layout().InteriorBounds()
	goals := gatherGoals(interior, g.Anchor, len(ids))
	if goals == nil {
		return fmt.Errorf("gather block at %v cannot hold %d cages", g.Anchor, len(ids))
	}
	// Stable assignment: sort ids, match greedily to nearest free goal
	// (simple assignment keeps routes short without full Hungarian).
	agents := make([]route.Agent, 0, len(ids))
	usedGoal := make([]bool, len(goals))
	sortInts(ids)
	for _, id := range ids {
		start, _ := sim.Layout().Position(id)
		best, bestD := -1, 1<<30
		for gi, goal := range goals {
			if usedGoal[gi] {
				continue
			}
			if d := start.Manhattan(goal); d < bestD {
				best, bestD = gi, d
			}
		}
		usedGoal[best] = true
		agents = append(agents, route.Agent{ID: id, Start: start, Goal: goals[best]})
	}
	prob := route.Problem{
		Cols: sim.Layout().Cols(), Rows: sim.Layout().Rows(), Agents: agents,
	}
	plan, err := (route.Prioritized{}).Plan(prob)
	if err != nil {
		return err
	}
	if !plan.Solved {
		return errors.New("assay: gather routing unsolved")
	}
	if err := sim.ExecutePlan(plan); err != nil {
		return err
	}
	rep.Steps += plan.Makespan
	return nil
}

// EstimateDuration predicts assay time without executing: settles and
// scans are taken at face value; gathers are estimated as the worst-case
// Manhattan distance from array corners to the anchor times the step
// time of a nominal cell.
func EstimateDuration(pr Program, cfg chip.Config) (float64, error) {
	if err := pr.Check(cfg); err != nil {
		return 0, err
	}
	sim, err := chip.New(cfg)
	if err != nil {
		return 0, err
	}
	total := 0.0
	stepTime := sim.StepTime()
	for _, op := range pr.Ops {
		switch o := op.(type) {
		case Settle:
			d := o.Duration
			if d == 0 {
				d = sim.Chamber().Height / (5 * units.Micron)
			}
			total += d
		case Capture:
			total += cfg.Array.FrameProgramTime()
		case Gather:
			diag := cfg.Array.Cols + cfg.Array.Rows
			total += float64(diag) * stepTime
		case Scan:
			t, err := cfg.Sensor.ArrayScanTime(cfg.Array.Cols, cfg.Array.Rows, o.Averaging, cfg.SensorParallelism)
			if err != nil {
				return 0, err
			}
			total += t
		case Probe:
			// Two frame programs plus an ejection dwell of a few
			// seconds (bounded the same way the simulator bounds it).
			total += 2*cfg.Array.FrameProgramTime() + 10
		case Wash:
			pressure := o.Pressure
			if pressure == 0 {
				pressure = washDefaultPressure
			}
			pkg, err := fab.GeneratePackage(fab.DefaultPackageSpec())
			if err != nil {
				return 0, err
			}
			ft, err := pkg.FillTime(pressure, cfg.Env.Viscosity)
			if err != nil {
				return 0, err
			}
			total += o.Volumes * ft
		}
	}
	return total, nil
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
