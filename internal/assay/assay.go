// Package assay provides the protocol level of the platform: an assay is
// a sequence of high-level operations (load a sample, let it settle,
// capture, gather cells into a region, scan, release) that the compiler
// checks statically and the executor runs on a chip.Simulator, invoking
// the routing CAD for every motion step.
//
// This is the level a biologist user of the platform would script at;
// everything below (frames, cages, paths, physics) is generated.
package assay

import (
	"errors"
	"fmt"
	"time"

	"biochip/internal/cage"
	"biochip/internal/chip"
	"biochip/internal/fab"
	"biochip/internal/geom"
	"biochip/internal/particle"
	"biochip/internal/route"
	"biochip/internal/stream"
	"biochip/internal/units"
)

// Op is one assay operation.
type Op interface {
	// Describe returns a human-readable summary.
	Describe() string
	isOp()
}

// Load introduces a particle population.
type Load struct {
	Kind  particle.Kind
	Count int
}

// Describe implements Op.
func (l Load) Describe() string { return fmt.Sprintf("load %d × %s", l.Count, l.Kind.Name) }
func (Load) isOp()              {}

// Settle waits for sedimentation.
type Settle struct {
	// Duration in seconds; 0 means "auto": chamber height over a
	// conservative settling speed.
	Duration float64
}

// Describe implements Op.
func (s Settle) Describe() string {
	if s.Duration == 0 {
		return "settle (auto)"
	}
	return "settle " + units.FormatDuration(s.Duration)
}
func (Settle) isOp() {}

// Capture forms cages and traps everything in the capture zone.
type Capture struct{}

// Describe implements Op.
func (Capture) Describe() string { return "capture all" }
func (Capture) isOp()            {}

// Gather routes every trapped particle into a packed block anchored at
// the given interior corner cell (row-major lattice at MinSeparation).
type Gather struct {
	Anchor geom.Cell
	// Planner names the routing planner (route.PlannerByName); ""
	// selects the production default, "prioritized".
	Planner string
}

// Describe implements Op.
func (g Gather) Describe() string {
	if g.Planner != "" {
		return fmt.Sprintf("gather at %v (%s)", g.Anchor, g.Planner)
	}
	return fmt.Sprintf("gather at %v", g.Anchor)
}
func (Gather) isOp() {}

// MoveTarget sends one trapped cage (by particle ID) to a goal cell.
type MoveTarget struct {
	ID   int
	Goal geom.Cell
}

// Move routes an explicit set of trapped cages to explicit goal cells
// with a named planner — the raw interface to the routing CAD, where
// Gather is the packaged "collect everything" pattern. Cages not listed
// stay parked and are treated as fixed obstacles. Every listed agent
// must be trapped when the op executes.
type Move struct {
	// Planner names the routing planner (route.PlannerByName); ""
	// selects "prioritized".
	Planner string
	// Agents lists the cages to move and where to.
	Agents []MoveTarget
}

// Describe implements Op.
func (m Move) Describe() string {
	planner := m.Planner
	if planner == "" {
		planner = "prioritized"
	}
	return fmt.Sprintf("move %d cages (%s)", len(m.Agents), planner)
}
func (Move) isOp() {}

// Scan reads all cage sites capacitively.
type Scan struct {
	Averaging int
}

// Describe implements Op.
func (s Scan) Describe() string { return fmt.Sprintf("scan (%dx averaging)", s.Averaging) }
func (Scan) isOp()              {}

// ReleaseAll frees every trapped particle.
type ReleaseAll struct{}

// Describe implements Op.
func (ReleaseAll) Describe() string { return "release all" }
func (ReleaseAll) isOp()            {}

// Probe switches the DEP drive to the given frequency, ejecting trapped
// particles that respond with positive DEP there (label-free selection,
// e.g. viability sorting at a frequency between the two populations'
// crossovers).
type Probe struct {
	Frequency float64
}

// Describe implements Op.
func (p Probe) Describe() string {
	return fmt.Sprintf("DEP probe @ %s", units.Format(p.Frequency, "Hz"))
}
func (Probe) isOp() {}

// Wash exchanges chamber volumes through the fluidic package, removing
// untrapped particles while caged ones hold — the isolation step of
// rare-cell workflows. Pressure defaults to a cell-safe 200 Pa when 0.
type Wash struct {
	// Volumes is the number of chamber volumes exchanged (≥ 1 typical).
	Volumes float64
	// Pressure is the drive pressure in Pa; 0 selects 200 Pa.
	Pressure float64
}

// Describe implements Op.
func (w Wash) Describe() string {
	return fmt.Sprintf("wash %.1f chamber volumes", w.Volumes)
}
func (Wash) isOp() {}

// washDefaultPressure is the cell-safe default drive (2 mbar).
const washDefaultPressure = 200.0

// Program is an ordered assay.
type Program struct {
	Name string
	Ops  []Op
	// Requirements is the optional explicit placement-requirements
	// block ("requirements" on the wire). When set, Check enforces it
	// against the die configuration and the heterogeneous service uses
	// it for profile placement instead of InferRequirements.
	Requirements *Requirements
}

// CheckOps validates everything about the program that does not depend
// on a die configuration: operation ordering (capture before
// gather/scan/release), positive loads and valid particle kinds, known
// planner names, and move-goal uniqueness/separation. A program that
// fails CheckOps is malformed on every die; one that passes may still
// fail Check against a particular (too small) configuration — the
// distinction the heterogeneous service uses to tell "bad program"
// (reject outright) from "no compatible profile" (typed 422).
func (pr Program) CheckOps() error { return pr.check(nil) }

// Check statically validates the program against a platform config:
// everything CheckOps covers, plus load sizes against cage capacity,
// gather block fit, move goals inside the interior, and the explicit
// Requirements block (when present).
func (pr Program) Check(cfg chip.Config) error {
	return pr.check(&cfg)
}

// check is the shared walk behind CheckOps and Check; cfg == nil skips
// every configuration-dependent rule.
func (pr Program) check(cfg *chip.Config) error {
	if len(pr.Ops) == 0 {
		return errors.New("assay: empty program")
	}
	capacity := 0
	if cfg != nil {
		if pr.Requirements != nil {
			if err := pr.Requirements.Check(*cfg); err != nil {
				return err
			}
		}
		capacity = cage.MaxCages(cfg.Array.Cols, cfg.Array.Rows, cage.MinSeparation)
	}
	loaded := 0
	captured := false
	for i, op := range pr.Ops {
		switch o := op.(type) {
		case Load:
			if o.Count <= 0 {
				return fmt.Errorf("assay: op %d: non-positive load", i)
			}
			if err := o.Kind.Validate(); err != nil {
				return fmt.Errorf("assay: op %d: %w", i, err)
			}
			loaded += o.Count
			if cfg != nil && loaded > capacity {
				return fmt.Errorf("assay: op %d: %d particles exceed %d cage capacity",
					i, loaded, capacity)
			}
		case Settle:
			if o.Duration < 0 {
				return fmt.Errorf("assay: op %d: negative settle", i)
			}
		case Capture:
			if loaded == 0 {
				return fmt.Errorf("assay: op %d: capture before any load", i)
			}
			captured = true
		case Gather:
			if !captured {
				return fmt.Errorf("assay: op %d: gather before capture", i)
			}
			// The interior starts at Margin on every die, so an anchor
			// below it is malformed config-independently.
			if o.Anchor.Col < cage.Margin || o.Anchor.Row < cage.Margin {
				return fmt.Errorf("assay: op %d: anchor %v outside any interior", i, o.Anchor)
			}
			if cfg != nil && !blockFits(*cfg, o.Anchor, loaded) {
				return fmt.Errorf("assay: op %d: gather block at %v cannot hold %d cages",
					i, o.Anchor, loaded)
			}
			if err := checkPlannerName(o.Planner); err != nil {
				return fmt.Errorf("assay: op %d: %w", i, err)
			}
		case Move:
			if !captured {
				return fmt.Errorf("assay: op %d: move before capture", i)
			}
			if len(o.Agents) == 0 {
				return fmt.Errorf("assay: op %d: move with no agents", i)
			}
			if err := checkPlannerName(o.Planner); err != nil {
				return fmt.Errorf("assay: op %d: %w", i, err)
			}
			seenID := make(map[int]bool, len(o.Agents))
			for k, tgt := range o.Agents {
				if tgt.ID < 0 {
					return fmt.Errorf("assay: op %d: negative agent id %d", i, tgt.ID)
				}
				if seenID[tgt.ID] {
					return fmt.Errorf("assay: op %d: duplicate agent id %d", i, tgt.ID)
				}
				seenID[tgt.ID] = true
				if tgt.Goal.Col < cage.Margin || tgt.Goal.Row < cage.Margin {
					return fmt.Errorf("assay: op %d: goal %v outside any interior", i, tgt.Goal)
				}
				if cfg != nil {
					interior := geom.GridRect(cfg.Array.Cols, cfg.Array.Rows).Inset(cage.Margin)
					if !interior.Contains(tgt.Goal) {
						return fmt.Errorf("assay: op %d: goal %v outside interior", i, tgt.Goal)
					}
				}
				for _, prev := range o.Agents[:k] {
					if tgt.Goal.Chebyshev(prev.Goal) < cage.MinSeparation {
						return fmt.Errorf("assay: op %d: goals %v and %v too close",
							i, prev.Goal, tgt.Goal)
					}
				}
			}
		case Scan:
			if !captured {
				return fmt.Errorf("assay: op %d: scan before capture", i)
			}
			if o.Averaging < 1 {
				return fmt.Errorf("assay: op %d: averaging must be ≥ 1", i)
			}
		case ReleaseAll:
			if !captured {
				return fmt.Errorf("assay: op %d: release before capture", i)
			}
			captured = false
		case Probe:
			if !captured {
				return fmt.Errorf("assay: op %d: probe before capture", i)
			}
			if o.Frequency <= 0 {
				return fmt.Errorf("assay: op %d: non-positive probe frequency", i)
			}
		case Wash:
			if o.Volumes <= 0 {
				return fmt.Errorf("assay: op %d: non-positive wash volumes", i)
			}
			if o.Pressure < 0 {
				return fmt.Errorf("assay: op %d: negative wash pressure", i)
			}
		default:
			return fmt.Errorf("assay: op %d: unknown operation %T", i, op)
		}
	}
	return nil
}

// checkPlannerName rejects unknown planner references at compile time
// ("" is the production default and always legal).
func checkPlannerName(name string) error {
	if name == "" {
		return nil
	}
	_, err := route.PlannerByName(name)
	return err
}

// PlannerFor resolves an op's planner name against the route registry
// ("" selects the production default, "prioritized"), wiring the engine
// parallelism into the partitioned meta-planner — the same knob that
// drives every other parallel loop of the die. Exported alongside
// PlanTimed so CLI tools share the executor's planner-wiring convention.
func PlannerFor(name string, cfg chip.Config) (route.Planner, error) {
	if name == "" {
		name = "prioritized"
	}
	pl, err := route.PlannerByName(name)
	if err != nil {
		return nil, err
	}
	if pa, ok := pl.(route.Partitioned); ok {
		pa.Parallelism = cfg.Parallelism
		pl = pa
	}
	return pl, nil
}

// PlanTimed runs the planner and reports the wall-clock planning cost to
// the die's provenance counters (chip.PlannerStat.PlanSeconds).
func PlanTimed(sim *chip.Simulator, pl route.Planner, prob route.Problem) (*route.Plan, error) {
	//detlint:allow walltime — PlanSeconds is provenance telemetry surfaced in /v1/stats, excluded from the bit-identity contract; the plan itself is seed-deterministic
	start := time.Now()
	plan, err := pl.Plan(prob)
	//detlint:allow walltime — same telemetry stamp as above
	sim.RecordPlanTime(pl.Name(), time.Since(start).Seconds())
	return plan, err
}

// blockFits reports whether a row-major MinSeparation lattice of n cells
// anchored at a fits the interior.
func blockFits(cfg chip.Config, a geom.Cell, n int) bool {
	interior := geom.GridRect(cfg.Array.Cols, cfg.Array.Rows).Inset(cage.Margin)
	if !interior.Contains(a) {
		return false
	}
	cells := gatherGoals(interior, a, n)
	return cells != nil
}

// gatherGoals returns n goal cells packed row-major from anchor, or nil.
func gatherGoals(interior geom.Rect, anchor geom.Cell, n int) []geom.Cell {
	out := make([]geom.Cell, 0, n)
	for row := anchor.Row; row < interior.Max.Row && len(out) < n; row += cage.MinSeparation {
		for col := anchor.Col; col < interior.Max.Col && len(out) < n; col += cage.MinSeparation {
			out = append(out, geom.C(col, row))
		}
	}
	if len(out) < n {
		return nil
	}
	return out
}

// ScanRecord is the full detection table of one Scan operation, in
// deterministic site order. Two executions of the same seeded program
// produce bit-identical records regardless of parallelism or which die
// of a shard pool ran them — this is the payload the determinism
// contract is checked against.
type ScanRecord struct {
	// Averaging is the per-pixel sample count used.
	Averaging int `json:"averaging"`
	// Time is the simulated wall-clock cost of the scan (s).
	Time float64 `json:"time"`
	// Detections lists every cage site's verdict.
	Detections []chip.Detection `json:"detections"`
}

// Report summarizes an executed assay.
type Report struct {
	Program string `json:"program"`
	// Duration is total assay wall-clock time (s).
	Duration float64 `json:"duration"`
	// Steps counts routed cage steps (makespan sum over Gather ops).
	Steps int `json:"steps"`
	// Trapped is the particle count after the last Capture.
	Trapped int `json:"trapped"`
	// ScanErrors accumulates detection errors over all scans.
	ScanErrors int `json:"scan_errors"`
	// ScanSites accumulates scanned sites over all scans.
	ScanSites int `json:"scan_sites"`
	// ProbeKept and ProbeEjected accumulate DEP-probe outcomes.
	ProbeKept    int `json:"probe_kept"`
	ProbeEjected int `json:"probe_ejected"`
	// Washed counts untrapped particles removed by Wash operations.
	Washed int `json:"washed"`
	// Scans holds one full detection table per Scan operation.
	Scans []ScanRecord `json:"scans,omitempty"`
	// Routings records one entry per routed operation (gather/move) with
	// the planner that produced the plan — the report-level provenance.
	// All fields are deterministic; wall-clock planning cost lives in
	// the die's chip.PlanStats counters instead (surfaced by the
	// service's /v1/stats), keeping reports bit-identical across shards.
	Routings []RoutingRecord `json:"routings,omitempty"`
	// Events is the simulator log.
	Events []string `json:"events,omitempty"`
}

// RoutingRecord is the provenance of one routed operation.
type RoutingRecord struct {
	// Op is the operation kind, "gather" or "move".
	Op string `json:"op"`
	// Planner is the full planner name that produced the plan.
	Planner string `json:"planner"`
	// Agents is the instance size (moved cages plus fixed obstacles).
	Agents int `json:"agents"`
	// Makespan and Moves summarize the executed plan.
	Makespan int `json:"makespan"`
	Moves    int `json:"moves"`
}

// Execute compiles and runs the program on a fresh simulator built from
// cfg. Routed ops (Gather, Move) use the planner they name, defaulting
// to Prioritized (the production planner).
func Execute(pr Program, cfg chip.Config) (*Report, error) {
	// Check first: an invalid program must fail fast, before the
	// (potentially calibrating) simulator construction.
	if err := pr.Check(cfg); err != nil {
		return nil, err
	}
	sim, err := chip.New(cfg)
	if err != nil {
		return nil, err
	}
	return ExecuteOn(sim, pr)
}

// ExecuteOn runs the program on an existing simulator, which must be in
// its just-built (or just-Reset) state. It is the engine behind both
// Execute and the sharded assay service, where each die's simulator is
// reused across requests: Reset(seed) + ExecuteOn is bit-identical to
// Execute with cfg.Seed = seed.
func ExecuteOn(sim *chip.Simulator, pr Program) (*Report, error) {
	return ExecuteOnStream(sim, pr, nil)
}

// ExecuteOnStream is ExecuteOn with live progress events: while the
// program runs, the sink receives op.started/op.finished brackets
// around every operation plus the simulator's own events (scan-table
// row batches, executed-plan provenance — see chip.SetSink). A nil sink
// disables instrumentation entirely and is exactly ExecuteOn.
//
// The emitted sequence is part of the determinism contract: for a fixed
// seed the events (sequence, order, payloads — excluding the wall-clock
// stamp a stream.Ring adds) are bit-identical at any Parallelism and on
// any shard, because every emission happens on the executing goroutine
// at a deterministic point of the run.
func ExecuteOnStream(sim *chip.Simulator, pr Program, sink stream.Sink) (*Report, error) {
	cfg := sim.Config()
	if err := pr.Check(cfg); err != nil {
		return nil, err
	}
	if sink != nil {
		sim.SetSink(sink)
		defer sim.SetSink(nil)
	}
	emit := func(ev stream.Event) {
		if sink != nil {
			ev.T = sim.Clock()
			sink(ev)
		}
	}
	rep := &Report{Program: pr.Name}
	for i, op := range pr.Ops {
		emit(stream.Event{Type: stream.OpStarted,
			Op: &stream.OpInfo{Index: i, Kind: OpKind(op), Detail: op.Describe()}})
		detail := ""
		switch o := op.(type) {
		case Load:
			k := o.Kind
			if _, err := sim.Load(&k, o.Count); err != nil {
				return nil, fmt.Errorf("assay: op %d: %w", i, err)
			}
			detail = fmt.Sprintf("%d particles in chamber", sim.Particles())
		case Settle:
			d := o.Duration
			if d == 0 {
				d = sim.Chamber().Height / (5 * units.Micron) // conservative
			}
			frac := sim.Settle(d)
			detail = fmt.Sprintf("%.0f%% in capture zone", 100*frac)
		case Capture:
			cages, trapped, err := sim.CaptureAll()
			if err != nil {
				return nil, fmt.Errorf("assay: op %d: %w", i, err)
			}
			rep.Trapped = trapped
			detail = fmt.Sprintf("%d cages, %d trapped", cages, trapped)
		case Gather:
			routed := len(rep.Routings)
			if err := runGather(sim, o, rep); err != nil {
				return nil, fmt.Errorf("assay: op %d: %w", i, err)
			}
			detail = routingDetail(rep, routed)
		case Move:
			routed := len(rep.Routings)
			if err := runMove(sim, o, rep); err != nil {
				return nil, fmt.Errorf("assay: op %d: %w", i, err)
			}
			detail = routingDetail(rep, routed)
		case Scan:
			res, err := sim.Scan(o.Averaging)
			if err != nil {
				return nil, fmt.Errorf("assay: op %d: %w", i, err)
			}
			rep.ScanErrors += res.Errors
			rep.ScanSites += len(res.Detections)
			rep.Scans = append(rep.Scans, ScanRecord{
				Averaging:  res.Averaging,
				Time:       res.ScanTime,
				Detections: res.Detections,
			})
			detail = fmt.Sprintf("%d sites, %d errors", len(res.Detections), res.Errors)
		case ReleaseAll:
			released := 0
			for _, id := range sim.Layout().IDs() {
				if err := sim.Release(id); err != nil {
					return nil, fmt.Errorf("assay: op %d: %w", i, err)
				}
				released++
			}
			detail = fmt.Sprintf("%d released", released)
		case Probe:
			res, err := sim.ProbeDEPResponse(o.Frequency)
			if err != nil {
				return nil, fmt.Errorf("assay: op %d: %w", i, err)
			}
			rep.ProbeKept += len(res.Kept)
			rep.ProbeEjected += len(res.Lost)
			detail = fmt.Sprintf("%d kept, %d ejected", len(res.Kept), len(res.Lost))
		case Wash:
			pressure := o.Pressure
			if pressure == 0 {
				pressure = washDefaultPressure
			}
			res, err := sim.Flush(o.Volumes, pressure)
			if err != nil {
				return nil, fmt.Errorf("assay: op %d: %w", i, err)
			}
			rep.Washed += res.Removed
			detail = fmt.Sprintf("%d washed out", res.Removed)
		}
		emit(stream.Event{Type: stream.OpFinished,
			Op: &stream.OpInfo{Index: i, Kind: OpKind(op), Detail: detail}})
	}
	rep.Duration = sim.Clock()
	rep.Events = sim.Log()
	return rep, nil
}

// OpKind returns the operation's wire name — the same tag the JSON
// codec uses ("load", "settle", "capture", "gather", "move", "scan",
// "release", "probe", "wash") — so stream events and program documents
// speak one vocabulary.
func OpKind(op Op) string {
	switch op.(type) {
	case Load:
		return "load"
	case Settle:
		return "settle"
	case Capture:
		return "capture"
	case Gather:
		return "gather"
	case Move:
		return "move"
	case Scan:
		return "scan"
	case ReleaseAll:
		return "release"
	case Probe:
		return "probe"
	case Wash:
		return "wash"
	default:
		return fmt.Sprintf("%T", op)
	}
}

// routingDetail summarizes the routing record the op just appended (a
// no-op route — nothing trapped — appends none) for op.finished.
func routingDetail(rep *Report, before int) string {
	if len(rep.Routings) == before {
		return "nothing to route"
	}
	r := rep.Routings[len(rep.Routings)-1]
	return fmt.Sprintf("%s: makespan %d, %d moves", r.Planner, r.Makespan, r.Moves)
}

// GatherProblem builds the routing instance a Gather op executes: every
// trapped cage assigned to a cell of the packed block anchored at
// g.Anchor. Exported so CLI tools (cmd/biochipsim) can route the same
// workload through any planner without re-deriving the assignment.
func GatherProblem(sim *chip.Simulator, g Gather) (route.Problem, error) {
	ids := sim.Layout().IDs()
	if len(ids) == 0 {
		return route.Problem{}, nil
	}
	interior := sim.Layout().InteriorBounds()
	goals := gatherGoals(interior, g.Anchor, len(ids))
	if goals == nil {
		return route.Problem{}, fmt.Errorf("gather block at %v cannot hold %d cages", g.Anchor, len(ids))
	}
	// Stable assignment: sort ids, match greedily to nearest free goal
	// (simple assignment keeps routes short without full Hungarian).
	agents := make([]route.Agent, 0, len(ids))
	usedGoal := make([]bool, len(goals))
	sortInts(ids)
	for _, id := range ids {
		start, _ := sim.Layout().Position(id)
		best, bestD := -1, 1<<30
		for gi, goal := range goals {
			if usedGoal[gi] {
				continue
			}
			if d := start.Manhattan(goal); d < bestD {
				best, bestD = gi, d
			}
		}
		usedGoal[best] = true
		agents = append(agents, route.Agent{ID: id, Start: start, Goal: goals[best]})
	}
	return route.Problem{
		Cols: sim.Layout().Cols(), Rows: sim.Layout().Rows(), Agents: agents,
	}, nil
}

// runGather routes all trapped cages into the packed block.
func runGather(sim *chip.Simulator, g Gather, rep *Report) error {
	prob, err := GatherProblem(sim, g)
	if err != nil {
		return err
	}
	if len(prob.Agents) == 0 {
		return nil
	}
	return routeAndExecute(sim, g.Planner, "gather", prob, rep)
}

// runMove routes the listed cages to their goals; every unlisted
// trapped cage becomes a fixed obstacle (start == goal).
func runMove(sim *chip.Simulator, m Move, rep *Report) error {
	layout := sim.Layout()
	agents := make([]route.Agent, 0, layout.Len())
	listed := make(map[int]bool, len(m.Agents))
	for _, tgt := range m.Agents {
		start, ok := layout.Position(tgt.ID)
		if !ok {
			return fmt.Errorf("move: agent %d is not a trapped cage", tgt.ID)
		}
		listed[tgt.ID] = true
		agents = append(agents, route.Agent{ID: tgt.ID, Start: start, Goal: tgt.Goal})
	}
	parked := layout.IDs()
	sortInts(parked)
	for _, id := range parked {
		if listed[id] {
			continue
		}
		pos, _ := layout.Position(id)
		agents = append(agents, route.Agent{ID: id, Start: pos, Goal: pos})
	}
	prob := route.Problem{Cols: layout.Cols(), Rows: layout.Rows(), Agents: agents}
	return routeAndExecute(sim, m.Planner, "move", prob, rep)
}

// routeAndExecute plans a routing instance with the named planner,
// executes the plan and appends the provenance record.
func routeAndExecute(sim *chip.Simulator, plannerName, op string, prob route.Problem, rep *Report) error {
	pl, err := PlannerFor(plannerName, sim.Config())
	if err != nil {
		return err
	}
	plan, err := PlanTimed(sim, pl, prob)
	if err != nil {
		return err
	}
	if !plan.Solved {
		return fmt.Errorf("assay: %s routing unsolved", op)
	}
	if err := sim.ExecutePlan(plan); err != nil {
		return err
	}
	rep.Steps += plan.Makespan
	rep.Routings = append(rep.Routings, RoutingRecord{
		Op:       op,
		Planner:  plan.Planner,
		Agents:   len(prob.Agents),
		Makespan: plan.Makespan,
		Moves:    plan.TotalMoves,
	})
	return nil
}

// EstimateDuration predicts assay time without executing: settles and
// scans are taken at face value; gathers are estimated as the worst-case
// Manhattan distance from array corners to the anchor times the step
// time of a nominal cell.
func EstimateDuration(pr Program, cfg chip.Config) (float64, error) {
	if err := pr.Check(cfg); err != nil {
		return 0, err
	}
	sim, err := chip.New(cfg)
	if err != nil {
		return 0, err
	}
	total := 0.0
	stepTime := sim.StepTime()
	for _, op := range pr.Ops {
		switch o := op.(type) {
		case Settle:
			d := o.Duration
			if d == 0 {
				d = sim.Chamber().Height / (5 * units.Micron)
			}
			total += d
		case Capture:
			total += cfg.Array.FrameProgramTime()
		case Gather, Move:
			// Cages move synchronously: the estimate is the longest
			// goal distance an agent could have to cover.
			diag := cfg.Array.Cols + cfg.Array.Rows
			total += float64(diag) * stepTime
		case Scan:
			t, err := cfg.Sensor.ArrayScanTime(cfg.Array.Cols, cfg.Array.Rows, o.Averaging, cfg.SensorParallelism)
			if err != nil {
				return 0, err
			}
			total += t
		case Probe:
			// Two frame programs plus an ejection dwell of a few
			// seconds (bounded the same way the simulator bounds it).
			total += 2*cfg.Array.FrameProgramTime() + 10
		case Wash:
			pressure := o.Pressure
			if pressure == 0 {
				pressure = washDefaultPressure
			}
			pkg, err := fab.GeneratePackage(fab.DefaultPackageSpec())
			if err != nil {
				return 0, err
			}
			ft, err := pkg.FillTime(pressure, cfg.Env.Viscosity)
			if err != nil {
				return 0, err
			}
			total += o.Volumes * ft
		}
	}
	return total, nil
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
