package assay

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"biochip/internal/geom"
	"biochip/internal/particle"
)

// goldenProgram is the documented example in docs/assay-format.md and
// docs/examples/isolate.json. Changing the wire format or the example
// must keep all three representations in sync — that is what the tests
// below enforce.
func goldenProgram(t *testing.T) Program {
	t.Helper()
	viable, err := particle.KindByName("viable-cell")
	if err != nil {
		t.Fatal(err)
	}
	return Program{
		Name: "isolate",
		Ops: []Op{
			Load{Kind: viable, Count: 8},
			Settle{},
			Capture{},
			Probe{Frequency: 10000},
			Wash{Volumes: 5},
			Gather{Anchor: geom.C(1, 1)},
			Scan{Averaging: 16},
			ReleaseAll{},
		},
	}
}

// TestGoldenExampleFileRoundTrips pins the committed example program to
// the codec: decode must produce exactly the golden program, and
// encode→decode must be the identity.
func TestGoldenExampleFileRoundTrips(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "examples", "isolate.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got Program
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	want := goldenProgram(t)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("docs/examples/isolate.json decodes to\n%#v\nwant\n%#v", got, want)
	}
	reencoded, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	var back Program
	if err := json.Unmarshal(reencoded, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, want) {
		t.Fatal("marshal→unmarshal is not the identity on the golden program")
	}
	if err := want.Check(testConfig()); err != nil {
		t.Fatalf("golden program does not pass Check: %v", err)
	}
}

// TestGoldenExampleMatchesFormatDoc extracts the first JSON block from
// docs/assay-format.md and requires it to decode to the same program as
// the committed example file, so the documentation cannot drift.
func TestGoldenExampleMatchesFormatDoc(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "assay-format.md"))
	if err != nil {
		t.Fatal(err)
	}
	_, rest, found := strings.Cut(string(data), "```json\n")
	if !found {
		t.Fatal("docs/assay-format.md has no ```json block")
	}
	block, _, found := strings.Cut(rest, "```")
	if !found {
		t.Fatal("docs/assay-format.md json block is unterminated")
	}
	var got Program
	if err := json.Unmarshal([]byte(block), &got); err != nil {
		t.Fatalf("documented example does not decode: %v", err)
	}
	if want := goldenProgram(t); !reflect.DeepEqual(got, want) {
		t.Fatal("docs/assay-format.md example differs from docs/examples/isolate.json")
	}
}
