package assay

import (
	"testing"

	"biochip/internal/particle"
	"biochip/internal/units"
)

func TestProbeOpCheck(t *testing.T) {
	cfg := testConfig()
	good := Program{Name: "sort", Ops: []Op{
		Load{Kind: particle.ViableCell(), Count: 5},
		Load{Kind: particle.NonViableCell(), Count: 5},
		Settle{},
		Capture{},
		Probe{Frequency: 10 * units.Kilohertz},
	}}
	if err := good.Check(cfg); err != nil {
		t.Fatal(err)
	}
	early := Program{Ops: []Op{
		Load{Kind: particle.ViableCell(), Count: 5},
		Probe{Frequency: 1e4},
	}}
	if err := early.Check(cfg); err == nil {
		t.Error("probe before capture should fail")
	}
	zero := Program{Ops: []Op{
		Load{Kind: particle.ViableCell(), Count: 5},
		Capture{},
		Probe{},
	}}
	if err := zero.Check(cfg); err == nil {
		t.Error("zero probe frequency should fail")
	}
}

func TestViabilitySortingAssay(t *testing.T) {
	cfg := testConfig()
	cfg.Seed = 5
	pr := Program{
		Name: "viability-sort",
		Ops: []Op{
			Load{Kind: particle.ViableCell(), Count: 8},
			Load{Kind: particle.NonViableCell(), Count: 4},
			Settle{},
			Capture{},
			Probe{Frequency: 10 * units.Kilohertz},
			Scan{Averaging: 16},
		},
	}
	rep, err := Execute(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProbeKept == 0 {
		t.Error("probe should keep the viable cells")
	}
	if rep.ProbeEjected == 0 {
		t.Error("probe should eject the non-viable cells")
	}
	// The kept population should be dominated by viable cells: at 10 kHz
	// every non-viable cell (pDEP) is ejected.
	if rep.ProbeEjected < 3 {
		t.Errorf("expected ~4 ejected, got %d", rep.ProbeEjected)
	}
	if rep.ProbeKept < 6 {
		t.Errorf("expected ~8 kept, got %d", rep.ProbeKept)
	}
	if got := rep.ProbeKept + rep.ProbeEjected; got != rep.Trapped {
		t.Errorf("probe outcomes %d != trapped %d", got, rep.Trapped)
	}
	if p, ok := pr.Ops[4].(Probe); !ok || p.Describe() == "" {
		t.Error("probe description missing")
	}
}
