package assay

import (
	"fmt"

	"biochip/internal/cage"
	"biochip/internal/chip"
)

// Requirements is what a program asks of a die: the smallest array it
// can run on, the cage capacity it needs, and whether it scans. It is
// the placement currency of the heterogeneous assay service: a fleet
// admits a job only to profiles whose chip.Config satisfies the job's
// requirements (and passes the full Program.Check).
//
// Programs may carry an explicit Requirements block on the wire
// ("requirements" in the JSON codec, see docs/assay-format.md) — for
// example to pin a small program onto large dies; when absent, the
// service falls back to InferRequirements. Explicit requirements are
// enforced by Program.Check, so a die that does not satisfy them
// rejects the program even in a serial replay.
//
// All fields are lower bounds; zero values constrain nothing.
type Requirements struct {
	// MinCols/MinRows bound the electrode array footprint.
	MinCols int `json:"min_cols,omitempty"`
	MinRows int `json:"min_rows,omitempty"`
	// MinCapacity is the cage capacity (simultaneously trappable
	// particles) the program needs; Load totals must fit it.
	MinCapacity int `json:"min_capacity,omitempty"`
	// MinSensorParallelism is the number of parallel readout converters
	// the program's scans expect (1 when the program scans at all).
	MinSensorParallelism int `json:"min_sensor_parallelism,omitempty"`
}

// Zero reports whether the requirements constrain nothing.
func (r Requirements) Zero() bool { return r == Requirements{} }

// Check reports why a die configuration cannot satisfy the
// requirements, or nil when it can.
func (r Requirements) Check(cfg chip.Config) error {
	switch {
	case cfg.Array.Cols < r.MinCols:
		return fmt.Errorf("assay: requires ≥ %d columns, die has %d", r.MinCols, cfg.Array.Cols)
	case cfg.Array.Rows < r.MinRows:
		return fmt.Errorf("assay: requires ≥ %d rows, die has %d", r.MinRows, cfg.Array.Rows)
	}
	if r.MinCapacity > 0 {
		if cap := cage.MaxCages(cfg.Array.Cols, cfg.Array.Rows, cage.MinSeparation); cap < r.MinCapacity {
			return fmt.Errorf("assay: requires capacity ≥ %d cages, die holds %d", r.MinCapacity, cap)
		}
	}
	if cfg.SensorParallelism < r.MinSensorParallelism {
		return fmt.Errorf("assay: requires ≥ %d readout converters, die has %d",
			r.MinSensorParallelism, cfg.SensorParallelism)
	}
	return nil
}

// merge raises r to also cover o, field-wise.
func (r Requirements) merge(o Requirements) Requirements {
	if o.MinCols > r.MinCols {
		r.MinCols = o.MinCols
	}
	if o.MinRows > r.MinRows {
		r.MinRows = o.MinRows
	}
	if o.MinCapacity > r.MinCapacity {
		r.MinCapacity = o.MinCapacity
	}
	if o.MinSensorParallelism > r.MinSensorParallelism {
		r.MinSensorParallelism = o.MinSensorParallelism
	}
	return r
}

// InferRequirements derives a program's placement requirements from its
// operations: total load volume becomes the capacity floor, gather
// anchors and move goals become array-footprint floors (an interior
// cell at (c,r) needs a (c+Margin+1)×(r+Margin+1) array), and any scan
// requires a readout converter.
//
// The inference is a sound lower bound, not the full admission story:
// geometry that depends on the die shape (whether a gather block of N
// cages fits behind its anchor) is only decidable against a concrete
// config, which is Program.Check's job. The service therefore uses
// inferred requirements as a placement pre-filter and still runs Check
// against every candidate profile.
func (pr Program) InferRequirements() Requirements {
	var r Requirements
	loaded := 0
	for _, op := range pr.Ops {
		switch o := op.(type) {
		case Load:
			loaded += o.Count
			r = r.merge(Requirements{MinCapacity: loaded})
		case Gather:
			r = r.merge(Requirements{
				MinCols: o.Anchor.Col + cage.Margin + 1,
				MinRows: o.Anchor.Row + cage.Margin + 1,
			})
		case Move:
			for _, tgt := range o.Agents {
				r = r.merge(Requirements{
					MinCols: tgt.Goal.Col + cage.Margin + 1,
					MinRows: tgt.Goal.Row + cage.Margin + 1,
				})
			}
		case Scan:
			r = r.merge(Requirements{MinSensorParallelism: 1})
		}
	}
	return r
}

// EffectiveRequirements returns the program's explicit requirements
// block when present, falling back to InferRequirements.
func (pr Program) EffectiveRequirements() Requirements {
	if pr.Requirements != nil {
		return *pr.Requirements
	}
	return pr.InferRequirements()
}
