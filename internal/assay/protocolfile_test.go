package assay

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestShippedProtocolFiles keeps the example protocol files under
// examples/protocols loadable and statically valid.
func TestShippedProtocolFiles(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "protocols")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("no protocols directory: %v", err)
	}
	cfg := testConfig()
	found := 0
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		found++
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		var pr Program
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if pr.Name == "" || len(pr.Ops) == 0 {
			t.Errorf("%s: empty program", e.Name())
		}
		if err := pr.Check(cfg); err != nil {
			t.Errorf("%s: fails Check: %v", e.Name(), err)
		}
	}
	if found == 0 {
		t.Error("no protocol files shipped")
	}
}
