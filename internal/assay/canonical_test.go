package assay

import (
	"bytes"
	"encoding/json"
	"testing"
)

// canon parses src as a Program and returns its canonical encoding.
func canon(t *testing.T, src string) []byte {
	t.Helper()
	var pr Program
	if err := json.Unmarshal([]byte(src), &pr); err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	raw, err := pr.CanonicalJSON()
	if err != nil {
		t.Fatalf("canonicalize %q: %v", src, err)
	}
	return raw
}

// TestCanonicalJSONEquivalence pins that purely syntactic variation in
// the submitted JSON — whitespace, key order, unknown fields, number
// spellings, explicit zeros of optional fields — disappears under
// canonicalization, while the base form canonicalizes to itself.
func TestCanonicalJSONEquivalence(t *testing.T) {
	base := `{"name":"isolate","ops":[{"op":"load","kind":"viable-cell","count":30},{"op":"settle"},{"op":"capture"},{"op":"gather","col":2,"row":3},{"op":"scan","averaging":16},{"op":"release"}]}`
	want := canon(t, base)
	if !bytes.Equal(want, []byte(base)) {
		t.Fatalf("base form is not a canonical fixed point:\n got %s\nwant %s", want, base)
	}

	equivalent := []struct {
		name string
		src  string
	}{
		{"whitespace", `{
			"name": "isolate",
			"ops": [
				{ "op": "load", "kind": "viable-cell", "count": 30 },
				{ "op": "settle" },
				{ "op": "capture" },
				{ "op": "gather", "col": 2, "row": 3 },
				{ "op": "scan", "averaging": 16 },
				{ "op": "release" }
			]
		}`},
		{"field order", `{"ops":[{"count":30,"kind":"viable-cell","op":"load"},{"op":"settle"},{"op":"capture"},{"row":3,"col":2,"op":"gather"},{"averaging":16,"op":"scan"},{"op":"release"}],"name":"isolate"}`},
		{"explicit zero optionals", `{"name":"isolate","ops":[{"op":"load","kind":"viable-cell","count":30},{"op":"settle","duration":0},{"op":"capture"},{"op":"gather","col":2,"row":3,"planner":""},{"op":"scan","averaging":16},{"op":"release"}]}`},
		{"unknown fields dropped", `{"name":"isolate","comment":"ignored","ops":[{"op":"load","kind":"viable-cell","count":30,"note":"x"},{"op":"settle"},{"op":"capture"},{"op":"gather","col":2,"row":3},{"op":"scan","averaging":16},{"op":"release"}]}`},
		{"number spellings", `{"name":"isolate","ops":[{"op":"load","kind":"viable-cell","count":30},{"op":"settle","duration":0e0},{"op":"capture"},{"op":"gather","col":2,"row":3},{"op":"scan","averaging":16},{"op":"release"}]}`},
		{"zero requirements block", `{"name":"isolate","requirements":{},"ops":[{"op":"load","kind":"viable-cell","count":30},{"op":"settle"},{"op":"capture"},{"op":"gather","col":2,"row":3},{"op":"scan","averaging":16},{"op":"release"}]}`},
		{"explicitly zero requirements fields", `{"name":"isolate","requirements":{"min_cols":0,"min_rows":0},"ops":[{"op":"load","kind":"viable-cell","count":30},{"op":"settle"},{"op":"capture"},{"op":"gather","col":2,"row":3},{"op":"scan","averaging":16},{"op":"release"}]}`},
	}
	for _, tc := range equivalent {
		if got := canon(t, tc.src); !bytes.Equal(got, want) {
			t.Errorf("%s: canonical form diverged:\n got %s\nwant %s", tc.name, got, want)
		}
	}

	distinct := []struct {
		name string
		src  string
	}{
		{"different program name", `{"name":"isolate2","ops":[{"op":"load","kind":"viable-cell","count":30},{"op":"settle"},{"op":"capture"},{"op":"gather","col":2,"row":3},{"op":"scan","averaging":16},{"op":"release"}]}`},
		{"different op parameter", `{"name":"isolate","ops":[{"op":"load","kind":"viable-cell","count":31},{"op":"settle"},{"op":"capture"},{"op":"gather","col":2,"row":3},{"op":"scan","averaging":16},{"op":"release"}]}`},
		{"non-zero requirements", `{"name":"isolate","requirements":{"min_cols":64},"ops":[{"op":"load","kind":"viable-cell","count":30},{"op":"settle"},{"op":"capture"},{"op":"gather","col":2,"row":3},{"op":"scan","averaging":16},{"op":"release"}]}`},
		{"reordered ops", `{"name":"isolate","ops":[{"op":"settle"},{"op":"load","kind":"viable-cell","count":30},{"op":"capture"},{"op":"gather","col":2,"row":3},{"op":"scan","averaging":16},{"op":"release"}]}`},
	}
	for _, tc := range distinct {
		if got := canon(t, tc.src); bytes.Equal(got, want) {
			t.Errorf("%s: canonical form should differ from base but matched: %s", tc.name, got)
		}
	}
}

// TestCanonicalJSONRoundTrip pins the fixed-point property on a program
// built in Go (move + planner + requirements — the fields with optional
// spellings): canonical bytes reparse to a program whose canonical
// bytes are identical.
func TestCanonicalJSONRoundTrip(t *testing.T) {
	src := `{"name":"mv","requirements":{"min_cols":40,"min_rows":40},"ops":[{"op":"load","kind":"viable-cell","count":4},{"op":"settle"},{"op":"capture"},{"op":"move","planner":"greedy","agents":[{"id":0,"col":5,"row":9},{"id":1,"col":7,"row":9}]},{"op":"scan","averaging":8},{"op":"release"}]}`
	first := canon(t, string(src))
	second := canon(t, string(first))
	if !bytes.Equal(first, second) {
		t.Fatalf("canonical encoding is not a fixed point:\nfirst  %s\nsecond %s", first, second)
	}
}

// FuzzProgramCanonical fuzzes the canonicalizer round trip: any input
// that parses as a Program must canonicalize, reparse, and canonicalize
// again to identical bytes. A failure here would mean two submissions
// of the "same" program could hash to different cache keys — or worse,
// that canonicalization is lossy.
func FuzzProgramCanonical(f *testing.F) {
	f.Add([]byte(`{"name":"isolate","ops":[{"op":"load","kind":"viable-cell","count":30},{"op":"settle"},{"op":"capture"},{"op":"scan","averaging":16},{"op":"release"}]}`))
	f.Add([]byte(`{"ops":[{"op":"gather","row":3,"col":2,"planner":"windowed"}],"name":"g"}`))
	f.Add([]byte(`{"name":"mv","requirements":{},"ops":[{"op":"move","agents":[{"id":1,"col":2,"row":3}]}]}`))
	f.Add([]byte(`{"name":"w","ops":[{"op":"wash","volumes":2.5,"pressure":1e-3},{"op":"probe","frequency":10000}]}`))
	f.Add([]byte(`{"name":"","ops":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var pr Program
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Skip()
		}
		first, err := pr.CanonicalJSON()
		if err != nil {
			// Programs that parse must re-encode: the codec accepts
			// only ops it can serialize.
			t.Fatalf("canonicalize parsed program: %v", err)
		}
		var back Program
		if err := json.Unmarshal(first, &back); err != nil {
			t.Fatalf("reparse canonical form %s: %v", first, err)
		}
		second, err := back.CanonicalJSON()
		if err != nil {
			t.Fatalf("re-canonicalize: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("canonical encoding not a fixed point:\ninput  %s\nfirst  %s\nsecond %s", data, first, second)
		}
	})
}
