package assay

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"biochip/internal/geom"
	"biochip/internal/particle"
	"biochip/internal/units"
)

func fullProgram() Program {
	return Program{
		Name: "roundtrip",
		Ops: []Op{
			Load{Kind: particle.ViableCell(), Count: 8},
			Load{Kind: particle.NonViableCell(), Count: 4},
			Settle{Duration: 30},
			Settle{},
			Capture{},
			Probe{Frequency: 10 * units.Kilohertz},
			Wash{Volumes: 5, Pressure: 200},
			Scan{Averaging: 32},
			Gather{Anchor: geom.C(1, 1)},
			ReleaseAll{},
		},
	}
}

func TestJSONRoundtrip(t *testing.T) {
	pr := fullProgram()
	data, err := json.Marshal(pr)
	if err != nil {
		t.Fatal(err)
	}
	var got Program
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != pr.Name || len(got.Ops) != len(pr.Ops) {
		t.Fatalf("shape lost: %q %d ops", got.Name, len(got.Ops))
	}
	for i := range pr.Ops {
		if reflect.TypeOf(got.Ops[i]) != reflect.TypeOf(pr.Ops[i]) {
			t.Fatalf("op %d type %T != %T", i, got.Ops[i], pr.Ops[i])
		}
	}
	// Spot-check payloads.
	if got.Ops[0].(Load).Kind.Name != "viable-cell" || got.Ops[0].(Load).Count != 8 {
		t.Error("load payload lost")
	}
	if got.Ops[5].(Probe).Frequency != 10*units.Kilohertz {
		t.Error("probe payload lost")
	}
	if got.Ops[6].(Wash).Volumes != 5 {
		t.Error("wash payload lost")
	}
	if got.Ops[8].(Gather).Anchor != geom.C(1, 1) {
		t.Error("gather payload lost")
	}
	// The reloaded program still checks and runs.
	cfg := testConfig()
	if err := got.Check(cfg); err != nil {
		t.Fatalf("reloaded program fails Check: %v", err)
	}
}

func TestJSONHumanAuthored(t *testing.T) {
	src := `{
	  "name": "from-file",
	  "ops": [
	    {"op": "load", "kind": "viable-cell", "count": 5},
	    {"op": "settle"},
	    {"op": "capture"},
	    {"op": "scan", "averaging": 16}
	  ]
	}`
	var pr Program
	if err := json.Unmarshal([]byte(src), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Name != "from-file" || len(pr.Ops) != 4 {
		t.Fatalf("parse result wrong: %+v", pr)
	}
	if err := pr.Check(testConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestJSONErrors(t *testing.T) {
	cases := []string{
		`{"ops": [{"op": "teleport"}]}`,
		`{"ops": [{"op": "load", "kind": "unobtainium-cell", "count": 1}]}`,
		`{invalid json`,
	}
	for i, src := range cases {
		var pr Program
		if err := json.Unmarshal([]byte(src), &pr); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestJSONStableTags(t *testing.T) {
	data, err := json.Marshal(fullProgram())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, tag := range []string{`"op":"load"`, `"op":"probe"`, `"op":"wash"`,
		`"kind":"viable-cell"`, `"op":"gather"`, `"op":"release"`} {
		if !strings.Contains(s, tag) {
			t.Errorf("serialized form missing %s: %s", tag, s)
		}
	}
}

func TestKindByName(t *testing.T) {
	k, err := particle.KindByName("nonviable-cell")
	if err != nil || k.Viable {
		t.Fatalf("KindByName: %v %v", k, err)
	}
	if _, err := particle.KindByName("nope"); err == nil {
		t.Error("unknown kind should fail")
	}
}
