package assay

import "encoding/json"

// CanonicalJSON returns the canonical wire encoding of the program: the
// compact, canonical-key-order JSON produced by the Program codec, with
// purely syntactic degrees of freedom in the submitted form erased —
// whitespace, object-key order, unknown fields, alternate number
// spellings and explicitly-zero optional fields all disappear, because
// the encoding is regenerated from the parsed structure rather than
// from the submitted bytes. Two submissions that parse to the same
// program therefore canonicalize to the same bytes, which is what makes
// the encoding fit to be hashed as cache-key material (internal/cache,
// docs/caching.md).
//
// An explicitly supplied all-zero "requirements" block is normalized
// away: it constrains placement exactly as an absent block does
// (InferRequirements takes over either way), so the two spellings are
// the same program.
func (pr Program) CanonicalJSON() (json.RawMessage, error) {
	if pr.Requirements != nil && pr.Requirements.Zero() {
		pr.Requirements = nil
	}
	return json.Marshal(pr)
}
