package assay

import (
	"encoding/json"
	"fmt"

	"biochip/internal/geom"
	"biochip/internal/particle"
)

// The JSON form of a program is an object with a name and a list of
// tagged operations; particle kinds are referenced by their registered
// names. docs/assay-format.md is the full wire contract (op fields,
// ordering rules, seeds, reports) and golden_test.go pins the committed
// example docs/examples/isolate.json to this codec. Example:
//
//	{
//	  "name": "isolate",
//	  "ops": [
//	    {"op": "load", "kind": "viable-cell", "count": 30},
//	    {"op": "settle"},
//	    {"op": "capture"},
//	    {"op": "probe", "frequency": 10000},
//	    {"op": "wash", "volumes": 5},
//	    {"op": "gather", "col": 1, "row": 1},
//	    {"op": "scan", "averaging": 32},
//	    {"op": "release"}
//	  ]
//	}
//
// Routed ops accept an optional "planner" naming a registered routing
// planner, and "move" routes explicit cages to explicit goals:
//
//	{"op": "move", "planner": "partitioned",
//	 "agents": [{"id": 0, "col": 5, "row": 9}, {"id": 1, "col": 7, "row": 9}]}
//
// A program may carry an explicit placement-requirements block, used by
// the heterogeneous assay service to pick compatible die profiles
// (inferred from the ops when absent):
//
//	{"name": "big", "requirements": {"min_cols": 96, "min_rows": 96}, "ops": [...]}

// jsonOp is the wire form of one operation.
type jsonOp struct {
	Op        string       `json:"op"`
	Kind      string       `json:"kind,omitempty"`
	Count     int          `json:"count,omitempty"`
	Duration  float64      `json:"duration,omitempty"`
	Frequency float64      `json:"frequency,omitempty"`
	Volumes   float64      `json:"volumes,omitempty"`
	Pressure  float64      `json:"pressure,omitempty"`
	Averaging int          `json:"averaging,omitempty"`
	Col       int          `json:"col,omitempty"`
	Row       int          `json:"row,omitempty"`
	Planner   string       `json:"planner,omitempty"`
	Agents    []jsonTarget `json:"agents,omitempty"`
}

// jsonTarget is the wire form of one Move target.
type jsonTarget struct {
	ID  int `json:"id"`
	Col int `json:"col"`
	Row int `json:"row"`
}

// jsonProgram is the wire form of a program. The optional
// "requirements" block carries explicit placement requirements
// (assay.Requirements); when absent, schedulers infer them from the
// operations (Program.InferRequirements).
type jsonProgram struct {
	Name         string        `json:"name"`
	Requirements *Requirements `json:"requirements,omitempty"`
	Ops          []jsonOp      `json:"ops"`
}

// MarshalJSON implements json.Marshaler.
func (pr Program) MarshalJSON() ([]byte, error) {
	out := jsonProgram{Name: pr.Name, Requirements: pr.Requirements}
	for i, op := range pr.Ops {
		var jo jsonOp
		switch o := op.(type) {
		case Load:
			jo = jsonOp{Op: "load", Kind: o.Kind.Name, Count: o.Count}
		case Settle:
			jo = jsonOp{Op: "settle", Duration: o.Duration}
		case Capture:
			jo = jsonOp{Op: "capture"}
		case Gather:
			jo = jsonOp{Op: "gather", Col: o.Anchor.Col, Row: o.Anchor.Row, Planner: o.Planner}
		case Move:
			jo = jsonOp{Op: "move", Planner: o.Planner}
			for _, tgt := range o.Agents {
				jo.Agents = append(jo.Agents, jsonTarget{ID: tgt.ID, Col: tgt.Goal.Col, Row: tgt.Goal.Row})
			}
		case Scan:
			jo = jsonOp{Op: "scan", Averaging: o.Averaging}
		case ReleaseAll:
			jo = jsonOp{Op: "release"}
		case Probe:
			jo = jsonOp{Op: "probe", Frequency: o.Frequency}
		case Wash:
			jo = jsonOp{Op: "wash", Volumes: o.Volumes, Pressure: o.Pressure}
		default:
			return nil, fmt.Errorf("assay: op %d: cannot serialize %T", i, op)
		}
		out.Ops = append(out.Ops, jo)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler. Kind references are
// resolved against the built-in particle registry.
func (pr *Program) UnmarshalJSON(data []byte) error {
	var in jsonProgram
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("assay: %w", err)
	}
	out := Program{Name: in.Name, Requirements: in.Requirements}
	for i, jo := range in.Ops {
		switch jo.Op {
		case "load":
			kind, err := particle.KindByName(jo.Kind)
			if err != nil {
				return fmt.Errorf("assay: op %d: %w", i, err)
			}
			out.Ops = append(out.Ops, Load{Kind: kind, Count: jo.Count})
		case "settle":
			out.Ops = append(out.Ops, Settle{Duration: jo.Duration})
		case "capture":
			out.Ops = append(out.Ops, Capture{})
		case "gather":
			out.Ops = append(out.Ops, Gather{Anchor: geom.C(jo.Col, jo.Row), Planner: jo.Planner})
		case "move":
			mv := Move{Planner: jo.Planner}
			for _, tgt := range jo.Agents {
				mv.Agents = append(mv.Agents, MoveTarget{ID: tgt.ID, Goal: geom.C(tgt.Col, tgt.Row)})
			}
			out.Ops = append(out.Ops, mv)
		case "scan":
			out.Ops = append(out.Ops, Scan{Averaging: jo.Averaging})
		case "release":
			out.Ops = append(out.Ops, ReleaseAll{})
		case "probe":
			out.Ops = append(out.Ops, Probe{Frequency: jo.Frequency})
		case "wash":
			out.Ops = append(out.Ops, Wash{Volumes: jo.Volumes, Pressure: jo.Pressure})
		default:
			return fmt.Errorf("assay: op %d: unknown operation %q", i, jo.Op)
		}
	}
	*pr = out
	return nil
}
