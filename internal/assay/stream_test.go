package assay

import (
	"encoding/json"
	"testing"

	"biochip/internal/chip"
	"biochip/internal/geom"
	"biochip/internal/particle"
	"biochip/internal/stream"
)

// streamProgram exercises every event-emitting op kind: load, settle,
// capture, scan batches, a routed gather and a release.
func streamProgram(cells int) Program {
	return Program{
		Name: "stream-walk",
		Ops: []Op{
			Load{Kind: particle.ViableCell(), Count: cells},
			Settle{},
			Capture{},
			Scan{Averaging: 8},
			Gather{Anchor: geom.C(1, 1)},
			Scan{Averaging: 8},
			ReleaseAll{},
		},
	}
}

// collectEvents runs the program on a fresh simulator with a Collector
// sink and returns the emitted events.
func collectEvents(t *testing.T, cfg chip.Config, pr Program) []stream.Event {
	t.Helper()
	sim, err := chip.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var c stream.Collector
	if _, err := ExecuteOnStream(sim, pr, c.Sink()); err != nil {
		t.Fatal(err)
	}
	return c.Events
}

// eventJSON renders events one-per-line for bit-exact comparison.
func eventJSON(t *testing.T, evs []stream.Event) string {
	t.Helper()
	out := ""
	for _, ev := range evs {
		ev.Wall = 0 // wall stamps are excluded from the contract
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		out += string(b) + "\n"
	}
	return out
}

// TestExecuteStreamDeterministicAcrossParallelism is the executor half
// of the streaming determinism contract: for a fixed seed, the emitted
// event sequence is bit-identical at any chip.Config.Parallelism.
func TestExecuteStreamDeterministicAcrossParallelism(t *testing.T) {
	pr := streamProgram(10)
	base := testConfig()
	base.Seed = 99

	var want string
	for _, p := range []int{1, 2, 4} {
		cfg := base
		cfg.Parallelism = p
		got := eventJSON(t, collectEvents(t, cfg, pr))
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("event stream at Parallelism=%d differs from Parallelism=1", p)
		}
	}
}

// TestExecuteStreamShape pins the taxonomy: op brackets around every
// op, scan.rows batches covering every scanned site exactly once, and
// plan provenance for the routed gather.
func TestExecuteStreamShape(t *testing.T) {
	pr := streamProgram(10)
	cfg := testConfig()
	cfg.Seed = 7
	evs := collectEvents(t, cfg, pr)

	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}

	var started, finished, plans int
	scanRows := map[int]int{}
	opIndex := -1
	for _, ev := range evs {
		switch ev.Type {
		case stream.OpStarted:
			started++
			if ev.Op == nil || ev.Op.Index != opIndex+1 {
				t.Fatalf("op.started out of order: %+v after index %d", ev.Op, opIndex)
			}
			opIndex = ev.Op.Index
			if want := OpKind(pr.Ops[ev.Op.Index]); ev.Op.Kind != want {
				t.Errorf("op %d kind %q, want %q", ev.Op.Index, ev.Op.Kind, want)
			}
		case stream.OpFinished:
			finished++
			if ev.Op == nil || ev.Op.Index != opIndex {
				t.Fatalf("op.finished for %+v while op %d is open", ev.Op, opIndex)
			}
		case stream.ScanRows:
			if ev.Scan == nil {
				t.Fatal("scan.rows without payload")
			}
			scanRows[ev.Scan.Scan] += len(ev.Scan.Rows)
			if ev.Scan.Batch >= ev.Scan.Batches {
				t.Errorf("scan batch %d of %d", ev.Scan.Batch, ev.Scan.Batches)
			}
		case stream.PlanExecuted:
			plans++
			if ev.Plan == nil || ev.Plan.Planner == "" {
				t.Errorf("plan.executed without provenance: %+v", ev.Plan)
			}
		default:
			t.Errorf("unexpected event type %q from the executor", ev.Type)
		}
	}
	if started != len(pr.Ops) || finished != len(pr.Ops) {
		t.Errorf("%d started / %d finished brackets, want %d each", started, finished, len(pr.Ops))
	}
	if plans != 1 {
		t.Errorf("%d plan.executed events, want 1 (single gather)", plans)
	}
	if len(scanRows) != 2 {
		t.Errorf("rows for %d scans, want 2", len(scanRows))
	}
	for scan, rows := range scanRows {
		if rows == 0 {
			t.Errorf("scan %d streamed no rows", scan)
		}
	}

	// The simulated clock must be monotonic over the stream.
	last := -1.0
	for i, ev := range evs {
		if ev.T < last {
			t.Fatalf("event %d clock went backwards: %v after %v", i, ev.T, last)
		}
		last = ev.T
	}
}

// TestExecuteOnStreamNilSinkIsExecuteOn keeps the instrumented path
// bit-identical to the plain one: same seed, same report, whether or
// not a sink is attached.
func TestExecuteOnStreamNilSinkIsExecuteOn(t *testing.T) {
	pr := streamProgram(8)
	cfg := testConfig()
	cfg.Seed = 41

	plain, err := Execute(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := chip.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var c stream.Collector
	streamed, err := ExecuteOnStream(sim, pr, c.Sink())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(streamed)
	if string(a) != string(b) {
		t.Error("attaching a sink changed the report")
	}
	if len(c.Events) == 0 {
		t.Error("sink saw no events")
	}
}
