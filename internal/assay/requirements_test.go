package assay

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"biochip/internal/cage"
	"biochip/internal/geom"
	"biochip/internal/particle"
)

// TestInferRequirements derives placement floors from each op family.
func TestInferRequirements(t *testing.T) {
	viable := particle.ViableCell()
	pr := Program{
		Name: "mixed",
		Ops: []Op{
			Load{Kind: viable, Count: 6},
			Load{Kind: viable, Count: 4},
			Settle{},
			Capture{},
			Move{Agents: []MoveTarget{{ID: 0, Goal: geom.C(40, 12)}}},
			Gather{Anchor: geom.C(9, 30)},
			Scan{Averaging: 8},
		},
	}
	got := pr.InferRequirements()
	want := Requirements{
		MinCols:              40 + cage.Margin + 1,
		MinRows:              30 + cage.Margin + 1,
		MinCapacity:          10,
		MinSensorParallelism: 1,
	}
	if got != want {
		t.Fatalf("InferRequirements = %+v, want %+v", got, want)
	}
	if !new(Program).InferRequirements().Zero() {
		t.Error("empty program infers nonzero requirements")
	}
}

// TestRequirementsCheck exercises every rejection reason.
func TestRequirementsCheck(t *testing.T) {
	cfg := testConfig() // 40×40 die
	cases := []struct {
		name string
		req  Requirements
		want string // substring of the error, "" = satisfied
	}{
		{"zero", Requirements{}, ""},
		{"fits", Requirements{MinCols: 40, MinRows: 40, MinCapacity: 10, MinSensorParallelism: 1}, ""},
		{"cols", Requirements{MinCols: 41}, "columns"},
		{"rows", Requirements{MinRows: 64}, "rows"},
		{"capacity", Requirements{MinCapacity: 100000}, "capacity"},
		{"sensor", Requirements{MinSensorParallelism: 1 << 20}, "readout"},
	}
	for _, tc := range cases {
		err := tc.req.Check(cfg)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestExplicitRequirementsEnforcedByCheck pins the contract that a
// program carrying an explicit requirements block is rejected by Check
// on a die that cannot satisfy it, even when the ops themselves fit.
func TestExplicitRequirementsEnforcedByCheck(t *testing.T) {
	pr := Program{
		Name: "pinned-large",
		Ops: []Op{
			Load{Kind: particle.ViableCell(), Count: 4},
			Capture{},
			Scan{Averaging: 8},
		},
		Requirements: &Requirements{MinCols: 96, MinRows: 96},
	}
	if err := pr.CheckOps(); err != nil {
		t.Fatalf("CheckOps: %v", err)
	}
	if err := pr.Check(testConfig()); err == nil {
		t.Fatal("40×40 die accepted a program requiring 96×96")
	}
	big := testConfig()
	big.Array.Cols, big.Array.Rows = 96, 96
	if err := pr.Check(big); err != nil {
		t.Fatalf("96×96 die rejected a satisfiable program: %v", err)
	}
}

// TestCheckOpsIsConfigIndependent: structural violations fail CheckOps,
// while fit violations pass it and only fail Check against a config.
func TestCheckOpsIsConfigIndependent(t *testing.T) {
	structural := Program{Name: "bad", Ops: []Op{Capture{}}}
	if err := structural.CheckOps(); err == nil {
		t.Error("capture-before-load passed CheckOps")
	}
	// Goals and anchors below the interior margin fit no die of any
	// size, so they are malformed config-independently (400, not 422,
	// at the service).
	negGoal := Program{
		Name: "neg-goal",
		Ops: []Op{
			Load{Kind: particle.ViableCell(), Count: 2},
			Capture{},
			Move{Agents: []MoveTarget{{ID: 0, Goal: geom.C(-5, 3)}}},
		},
	}
	if err := negGoal.CheckOps(); err == nil {
		t.Error("negative move goal passed CheckOps")
	}
	subMarginAnchor := Program{
		Name: "zero-anchor",
		Ops: []Op{
			Load{Kind: particle.ViableCell(), Count: 2},
			Capture{},
			Gather{Anchor: geom.C(0, 0)},
		},
	}
	if err := subMarginAnchor.CheckOps(); err == nil {
		t.Error("sub-margin gather anchor passed CheckOps")
	}
	tooBig := Program{
		Name: "toobig",
		Ops: []Op{
			Load{Kind: particle.ViableCell(), Count: 4},
			Capture{},
			Gather{Anchor: geom.C(200, 200)},
		},
	}
	if err := tooBig.CheckOps(); err != nil {
		t.Errorf("config-dependent misfit failed CheckOps: %v", err)
	}
	if err := tooBig.Check(testConfig()); err == nil {
		t.Error("oversized gather anchor passed Check on a 40×40 die")
	}
}

// TestRequirementsJSONRoundTrip pins the wire form of the requirements
// block.
func TestRequirementsJSONRoundTrip(t *testing.T) {
	pr := Program{
		Name:         "pinned",
		Requirements: &Requirements{MinCols: 96, MinRows: 64, MinCapacity: 12},
		Ops: []Op{
			Load{Kind: particle.ViableCell(), Count: 4},
			Capture{},
		},
	}
	data, err := json.Marshal(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"requirements":{"min_cols":96,"min_rows":64,"min_capacity":12}`) {
		t.Fatalf("wire form missing requirements block: %s", data)
	}
	var back Program
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, pr) {
		t.Fatalf("round trip changed the program:\n%#v\nwant\n%#v", back, pr)
	}
	// A program without the block stays without it on the wire.
	plain, err := json.Marshal(Program{Name: "p", Ops: pr.Ops})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(plain), "requirements") {
		t.Fatalf("requirements leaked into a plain program: %s", plain)
	}
}
