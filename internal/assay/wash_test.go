package assay

import (
	"testing"

	"biochip/internal/geom"
	"biochip/internal/particle"
	"biochip/internal/units"
)

func TestWashOpCheck(t *testing.T) {
	cfg := testConfig()
	good := Program{Name: "isolate", Ops: []Op{
		Load{Kind: particle.ViableCell(), Count: 10},
		Settle{},
		Capture{},
		Wash{Volumes: 3},
	}}
	if err := good.Check(cfg); err != nil {
		t.Fatal(err)
	}
	if err := (Program{Ops: []Op{
		Load{Kind: particle.ViableCell(), Count: 1},
		Wash{Volumes: 0},
	}}).Check(cfg); err == nil {
		t.Error("zero volumes should fail")
	}
	if err := (Program{Ops: []Op{
		Load{Kind: particle.ViableCell(), Count: 1},
		Wash{Volumes: 1, Pressure: -1},
	}}).Check(cfg); err == nil {
		t.Error("negative pressure should fail")
	}
	if (Wash{Volumes: 2}).Describe() == "" {
		t.Error("wash description missing")
	}
}

func TestRareCellIsolationWithWash(t *testing.T) {
	// The full rare-cell story: capture everything, probe to keep only
	// the nDEP population, wash the ejected background out, gather the
	// survivors.
	cfg := testConfig()
	cfg.Seed = 9
	pr := Program{
		Name: "isolate-and-wash",
		Ops: []Op{
			Load{Kind: particle.ViableCell(), Count: 8},
			Load{Kind: particle.NonViableCell(), Count: 8},
			Settle{},
			Capture{},
			Probe{Frequency: 10 * units.Kilohertz}, // ejects non-viable
			Wash{Volumes: 5},                       // washes them away
			Gather{Anchor: geom.C(1, 1)},
			Scan{Averaging: 16},
		},
	}
	rep, err := Execute(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProbeEjected == 0 {
		t.Error("probe should eject the non-viable cells")
	}
	if rep.Washed == 0 {
		t.Error("wash should remove the ejected background")
	}
	if rep.ProbeKept == 0 {
		t.Error("viable cells should survive the pipeline")
	}
}
