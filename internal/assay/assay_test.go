package assay

import (
	"strings"
	"testing"

	"biochip/internal/chip"
	"biochip/internal/geom"
	"biochip/internal/particle"
)

func testConfig() chip.Config {
	cfg := chip.DefaultConfig()
	cfg.Array.Cols, cfg.Array.Rows = 40, 40
	cfg.SensorParallelism = 40
	return cfg
}

func sortingProgram(n int) Program {
	return Program{
		Name: "test-sort",
		Ops: []Op{
			Load{Kind: particle.ViableCell(), Count: n},
			Settle{},
			Capture{},
			Scan{Averaging: 16},
			Gather{Anchor: geom.C(1, 1)},
			Scan{Averaging: 16},
			ReleaseAll{},
		},
	}
}

func TestProgramCheckAcceptsCanonical(t *testing.T) {
	if err := sortingProgram(10).Check(testConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestProgramCheckOrdering(t *testing.T) {
	cfg := testConfig()
	cases := []struct {
		name string
		ops  []Op
	}{
		{"empty", nil},
		{"capture-first", []Op{Capture{}}},
		{"gather-before-capture", []Op{Load{Kind: particle.ViableCell(), Count: 1}, Gather{Anchor: geom.C(1, 1)}}},
		{"scan-before-capture", []Op{Load{Kind: particle.ViableCell(), Count: 1}, Scan{Averaging: 1}}},
		{"release-before-capture", []Op{Load{Kind: particle.ViableCell(), Count: 1}, ReleaseAll{}}},
		{"zero-load", []Op{Load{Kind: particle.ViableCell(), Count: 0}}},
		{"negative-settle", []Op{Load{Kind: particle.ViableCell(), Count: 1}, Settle{Duration: -1}}},
		{"zero-averaging", []Op{Load{Kind: particle.ViableCell(), Count: 1}, Capture{}, Scan{Averaging: 0}}},
	}
	for _, c := range cases {
		if err := (Program{Name: c.name, Ops: c.ops}).Check(cfg); err == nil {
			t.Errorf("%s should fail Check", c.name)
		}
	}
}

func TestProgramCheckCapacity(t *testing.T) {
	cfg := testConfig()
	over := Program{Ops: []Op{Load{Kind: particle.ViableCell(), Count: 100000}}}
	if err := over.Check(cfg); err == nil {
		t.Error("overloading the array should fail")
	}
}

func TestProgramCheckGatherFit(t *testing.T) {
	cfg := testConfig()
	bad := Program{Ops: []Op{
		Load{Kind: particle.ViableCell(), Count: 50},
		Capture{},
		Gather{Anchor: geom.C(37, 37)}, // corner: no room for 50 cages
	}}
	if err := bad.Check(cfg); err == nil {
		t.Error("unfittable gather should fail Check")
	}
	outside := Program{Ops: []Op{
		Load{Kind: particle.ViableCell(), Count: 5},
		Capture{},
		Gather{Anchor: geom.C(0, 0)}, // margin cell
	}}
	if err := outside.Check(cfg); err == nil {
		t.Error("anchor in margin should fail Check")
	}
}

func TestExecuteCanonicalAssay(t *testing.T) {
	cfg := testConfig()
	cfg.Seed = 7
	rep, err := Execute(sortingProgram(8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trapped < 6 {
		t.Errorf("trapped only %d of 8", rep.Trapped)
	}
	if rep.Duration <= 0 {
		t.Error("assay must take time")
	}
	if rep.Steps <= 0 {
		t.Error("gather must take routing steps")
	}
	if rep.ScanSites == 0 {
		t.Error("scans must report sites")
	}
	if len(rep.Events) == 0 {
		t.Error("report should carry the event log")
	}
	// Sanity: scan accuracy is high at 16x averaging.
	if rep.ScanErrors > rep.ScanSites/10 {
		t.Errorf("scan errors %d/%d too high", rep.ScanErrors, rep.ScanSites)
	}
}

func TestExecuteRejectsInvalidProgram(t *testing.T) {
	if _, err := Execute(Program{}, testConfig()); err == nil {
		t.Error("invalid program must not execute")
	}
}

func TestEstimateDurationOrdersOfMagnitude(t *testing.T) {
	cfg := testConfig()
	pr := sortingProgram(8)
	est, err := EstimateDuration(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 7
	rep, err := Execute(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The estimate is deliberately worst-case for gathers; demand only
	// that it brackets reality within a factor of 30 either way.
	if est < rep.Duration/30 || est > rep.Duration*30 {
		t.Errorf("estimate %g s vs actual %g s: off by more than 30x", est, rep.Duration)
	}
}

func TestDescribeStrings(t *testing.T) {
	ops := []Op{
		Load{Kind: particle.ViableCell(), Count: 3},
		Settle{},
		Settle{Duration: 5},
		Capture{},
		Gather{Anchor: geom.C(1, 1)},
		Scan{Averaging: 4},
		ReleaseAll{},
	}
	for _, op := range ops {
		if op.Describe() == "" {
			t.Errorf("%T has empty description", op)
		}
	}
	if !strings.Contains((Settle{}).Describe(), "auto") {
		t.Error("auto settle should say so")
	}
}

func TestGatherGoalsPacking(t *testing.T) {
	interior := geom.GridRect(40, 40).Inset(1)
	goals := gatherGoals(interior, geom.C(1, 1), 9)
	if len(goals) != 9 {
		t.Fatalf("got %d goals", len(goals))
	}
	// Pairwise separation.
	for i := 0; i < len(goals); i++ {
		for j := i + 1; j < len(goals); j++ {
			if goals[i].Chebyshev(goals[j]) < 2 {
				t.Fatalf("goals too close: %v %v", goals[i], goals[j])
			}
		}
	}
	if goals[0] != geom.C(1, 1) {
		t.Errorf("first goal should be the anchor, got %v", goals[0])
	}
	// Unfittable request returns nil.
	if g := gatherGoals(interior, geom.C(38, 38), 10); g != nil {
		t.Error("packed block past the edge should fail")
	}
}
