// Package units provides SI unit scale factors, physical constants, and
// quantity-formatting helpers used throughout the biochip framework.
//
// Quantities in the framework are plain float64 values in base SI units
// (metres, seconds, volts, kilograms, ...). This package supplies named
// scale constants so that code reads in the units the domain uses
// (micrometres, microlitres, millipascal-seconds) while arithmetic stays in
// SI, and provides pretty-printers that pick engineering prefixes.
package units

import (
	"fmt"
	"math"
)

// Length scale factors, in metres.
const (
	Meter      = 1.0
	Centimeter = 1e-2
	Millimeter = 1e-3
	Micron     = 1e-6 // micrometre, the working unit of biochip layout
	Nanometer  = 1e-9
)

// Time scale factors, in seconds.
const (
	Second      = 1.0
	Millisecond = 1e-3
	Microsecond = 1e-6
	Nanosecond  = 1e-9
	Minute      = 60.0
	Hour        = 3600.0
	Day         = 86400.0
)

// Volume scale factors, in cubic metres.
const (
	Liter      = 1e-3
	Milliliter = 1e-6
	Microliter = 1e-9 // the paper's sample drop is ~4 µl
	Nanoliter  = 1e-12
	Picoliter  = 1e-15
)

// Electrical scale factors.
const (
	Volt       = 1.0
	Millivolt  = 1e-3
	Microvolt  = 1e-6
	Farad      = 1.0
	Picofarad  = 1e-12
	Femtofarad = 1e-15
	Attofarad  = 1e-18
	Ampere     = 1.0
	Picoampere = 1e-12
	Hertz      = 1.0
	Kilohertz  = 1e3
	Megahertz  = 1e6
	Gigahertz  = 1e9
)

// Force, energy and pressure scale factors.
const (
	Newton     = 1.0
	Piconewton = 1e-12
	Joule      = 1.0
	Pascal     = 1.0
	// PascalSecond is the SI unit of dynamic viscosity.
	PascalSecond      = 1.0
	MillipascalSecond = 1e-3 // water is ~1 mPa·s at 20 °C
)

// Temperature helpers (kelvin).
const (
	Kelvin       = 1.0
	ZeroCelsius  = 273.15
	RoomTemp     = 293.15 // 20 °C
	BodyTemp     = 310.15 // 37 °C
	CultureTemp  = 310.15
	AmbientDelta = 5.0
)

// Fundamental physical constants (SI).
const (
	Boltzmann  = 1.380649e-23     // J/K
	Epsilon0   = 8.8541878128e-12 // F/m, vacuum permittivity
	ElemCharge = 1.602176634e-19  // C
	GravityAcc = 9.80665          // m/s²
)

// Properties of aqueous media commonly used for DEP cell manipulation.
const (
	// WaterViscosity is the dynamic viscosity of water at room
	// temperature, Pa·s.
	WaterViscosity = 1.0e-3
	// WaterDensity is the density of water, kg/m³.
	WaterDensity = 998.0
	// WaterRelPermittivity is the relative permittivity of water.
	WaterRelPermittivity = 78.5
	// WaterThermalConductivity is in W/(m·K).
	WaterThermalConductivity = 0.6
	// WaterHeatCapacity is the volumetric heat capacity, J/(m³·K).
	WaterHeatCapacity = 4.18e6
	// TypicalCellDensity is the mass density of a mammalian cell, kg/m³.
	TypicalCellDensity = 1050.0
)

// siPrefix describes one engineering prefix step.
type siPrefix struct {
	exp    int
	symbol string
}

var prefixes = []siPrefix{
	{-18, "a"}, {-15, "f"}, {-12, "p"}, {-9, "n"}, {-6, "µ"},
	{-3, "m"}, {0, ""}, {3, "k"}, {6, "M"}, {9, "G"}, {12, "T"},
}

// Format renders a value with an engineering prefix and the given unit
// symbol, e.g. Format(3.2e-6, "m") == "3.20 µm". Zero, NaN and infinities
// are rendered without a prefix.
func Format(v float64, unit string) string {
	if v == 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Sprintf("%g %s", v, unit)
	}
	exp := int(math.Floor(math.Log10(math.Abs(v))))
	// Snap to the containing multiple-of-3 exponent.
	e3 := 3 * int(math.Floor(float64(exp)/3.0))
	if e3 < prefixes[0].exp {
		e3 = prefixes[0].exp
	}
	if e3 > prefixes[len(prefixes)-1].exp {
		e3 = prefixes[len(prefixes)-1].exp
	}
	var p siPrefix
	for _, cand := range prefixes {
		if cand.exp == e3 {
			p = cand
			break
		}
	}
	scaled := v / math.Pow(10, float64(p.exp))
	return fmt.Sprintf("%.3g %s%s", scaled, p.symbol, unit)
}

// FormatDuration renders a time in seconds using the most natural unit
// among ns/µs/ms/s/min/h/days.
func FormatDuration(sec float64) string {
	abs := math.Abs(sec)
	switch {
	case abs == 0 || math.IsNaN(abs) || math.IsInf(abs, 0):
		return fmt.Sprintf("%g s", sec)
	case abs < Microsecond:
		return fmt.Sprintf("%.3g ns", sec/Nanosecond)
	case abs < Millisecond:
		return fmt.Sprintf("%.3g µs", sec/Microsecond)
	case abs < Second:
		return fmt.Sprintf("%.3g ms", sec/Millisecond)
	case abs < Minute:
		return fmt.Sprintf("%.3g s", sec)
	case abs < Hour:
		return fmt.Sprintf("%.3g min", sec/Minute)
	case abs < Day:
		return fmt.Sprintf("%.3g h", sec/Hour)
	default:
		return fmt.Sprintf("%.3g days", sec/Day)
	}
}

// FormatMoney renders a cost in euros with thousands grouping, matching the
// paper's cost discussion ("few euros", "tens of thousands euros").
func FormatMoney(eur float64) string {
	neg := eur < 0
	n := int64(math.Round(math.Abs(eur)))
	s := fmt.Sprintf("%d", n)
	out := make([]byte, 0, len(s)+len(s)/3+3)
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	if neg {
		return "-€" + string(out)
	}
	return "€" + string(out)
}

// CelsiusToKelvin converts a temperature in degrees Celsius to kelvin.
func CelsiusToKelvin(c float64) float64 { return c + ZeroCelsius }

// KelvinToCelsius converts a temperature in kelvin to degrees Celsius.
func KelvinToCelsius(k float64) float64 { return k - ZeroCelsius }

// ThermalEnergy returns kB·T in joules for a temperature in kelvin.
func ThermalEnergy(tempK float64) float64 { return Boltzmann * tempK }

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates between a and b with parameter t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// ApproxEqual reports whether a and b agree to within relative tolerance
// rel (with an absolute floor of rel for values near zero).
func ApproxEqual(a, b, rel float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff <= rel*scale
}
