package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestScaleFactors(t *testing.T) {
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"micron", Micron, 1e-6},
		{"microliter", Microliter, 1e-9},
		{"femtofarad", Femtofarad, 1e-15},
		{"piconewton", Piconewton, 1e-12},
		{"minute", Minute, 60},
		{"hour", Hour, 3600},
		{"day", Day, 86400},
		{"millipascal second", MillipascalSecond, 1e-3},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %g, want %g", c.name, c.got, c.want)
		}
	}
}

func TestDropVolumeToHeight(t *testing.T) {
	// The paper's 4 µl drop over a ~1 cm² chip gives a ~40 µm layer —
	// sanity-check the unit constants compose correctly.
	vol := 4 * Microliter
	area := 1 * Centimeter * Centimeter
	h := vol / area
	if !ApproxEqual(h, 40*Micron, 1e-9) {
		t.Fatalf("4 µl over 1 cm² = %g m, want 40 µm", h)
	}
}

func TestFormat(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{3.2e-6, "m", "3.2 µm"},
		{2.5e-12, "N", "2.5 pN"},
		{1.5e6, "Hz", "1.5 MHz"},
		{0, "V", "0 V"},
		{-4.7e-3, "A", "-4.7 mA"},
	}
	for _, c := range cases {
		got := Format(c.v, c.unit)
		if got != c.want {
			t.Errorf("Format(%g,%q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}

func TestFormatExtremes(t *testing.T) {
	if got := Format(1e-21, "F"); !strings.Contains(got, "a") {
		t.Errorf("tiny value should clamp to atto prefix, got %q", got)
	}
	if got := Format(1e15, "Hz"); !strings.Contains(got, "T") {
		t.Errorf("huge value should clamp to tera prefix, got %q", got)
	}
	if got := Format(math.NaN(), "m"); !strings.Contains(got, "NaN") {
		t.Errorf("NaN formatting broken: %q", got)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		sec  float64
		want string
	}{
		{5e-9, "5 ns"},
		{12e-6, "12 µs"},
		{3.5e-3, "3.5 ms"},
		{2.5, "2.5 s"},
		{90, "1.5 min"},
		{7200, "2 h"},
		{3 * Day, "3 days"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.sec); got != c.want {
			t.Errorf("FormatDuration(%g) = %q, want %q", c.sec, got, c.want)
		}
	}
}

func TestFormatMoney(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{3, "€3"},
		{25000, "€25,000"},
		{1234567, "€1,234,567"},
		{-42, "-€42"},
	}
	for _, c := range cases {
		if got := FormatMoney(c.v); got != c.want {
			t.Errorf("FormatMoney(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestTemperatureConversions(t *testing.T) {
	if got := CelsiusToKelvin(20); got != 293.15 {
		t.Errorf("CelsiusToKelvin(20) = %g", got)
	}
	if got := KelvinToCelsius(310.15); math.Abs(got-37) > 1e-12 {
		t.Errorf("KelvinToCelsius(310.15) = %g", got)
	}
}

func TestThermalEnergy(t *testing.T) {
	kT := ThermalEnergy(RoomTemp)
	if kT < 4.0e-21 || kT > 4.1e-21 {
		t.Errorf("kT at room temperature = %g J, want ~4.05e-21", kT)
	}
}

func TestClampLerp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
	if Lerp(0, 10, 0.25) != 2.5 {
		t.Error("Lerp misbehaves")
	}
}

func TestClampProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) {
			return true
		}
		c := Clamp(v, -1, 1)
		return c >= -1 && c <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-9, 1e-6) {
		t.Error("values within tolerance reported unequal")
	}
	if ApproxEqual(1.0, 1.1, 1e-6) {
		t.Error("values outside tolerance reported equal")
	}
	if !ApproxEqual(0, 1e-9, 1e-6) {
		t.Error("near-zero comparison should use absolute floor")
	}
}
