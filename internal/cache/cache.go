// Package cache is the content-addressing layer of the assay service's
// result cache: a stable cryptographic key over the (program, seed,
// profile configuration) triple that fully determines an assay's report
// and event stream, plus a bounded LRU index over previously computed
// results.
//
// The determinism contract (docs/determinism.md) makes whole-assay
// memoization sound: a job is a pure function of its canonical program
// JSON, its request seed and the die configurations it may execute on,
// so two submissions with equal keys are guaranteed — not merely likely
// — to produce bit-identical reports and event streams. Key derivation
// is documented in docs/caching.md: every component is rendered as
// canonical-key-order JSON (struct-tag order, the doclint convention)
// and the concatenated material is hashed with SHA-256.
//
// The package deliberately knows nothing about jobs, stores or rings —
// it maps keys to small caller-owned values. internal/service owns the
// two-tier composition: an LRU from this package in front of the keyed
// finish index of internal/store.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"biochip/internal/assay"
	"biochip/internal/chip"
)

// Key is the content address of one assay execution: the SHA-256 of the
// canonical key material (see KeyOf). The zero Key is reserved as "not
// cacheable" by convention; a SHA-256 collision with it is not a
// practical concern.
type Key [sha256.Size]byte

// Zero reports whether the key is the reserved not-cacheable zero value.
func (k Key) Zero() bool { return k == Key{} }

// String returns the key in lowercase hex — the form persisted in
// durable finish records and shown in diagnostics.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ProfileMaterial is one eligible die profile's contribution to the key
// material: the profile name (it appears in event payloads, so renaming
// a profile legitimately changes the stream) and its canonical die
// configuration.
type ProfileMaterial struct {
	Name   string          `json:"name"`
	Config json.RawMessage `json:"config"`
}

// material is the canonical key material: hashing its canonical JSON
// yields the cache key.
type material struct {
	Program  json.RawMessage   `json:"program"`
	Seed     uint64            `json:"seed"`
	Profiles []ProfileMaterial `json:"profiles"`
}

// ConfigJSON renders a die configuration as canonical key material:
// canonical-key-order JSON with the two fields that never change a
// result zeroed first — Seed, because the request seed overrides it on
// every execution, and Parallelism, because results are bit-identical
// at any worker count (the determinism contract, enforced in CI).
func ConfigJSON(cfg chip.Config) ([]byte, error) {
	cfg.Seed = 0
	cfg.Parallelism = 0
	raw, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("cache: encoding config: %w", err)
	}
	return raw, nil
}

// KeyOf derives the content address of one submission: the canonical
// program encoding (assay.Program.CanonicalJSON), the request seed and
// the eligible profiles — names plus canonical configs, in fleet order.
// Submissions that may run on different profile sets get different keys
// by construction, so a cached result is only ever served where the
// scheduler could have produced it.
func KeyOf(pr assay.Program, seed uint64, profiles []ProfileMaterial) (Key, error) {
	prog, err := pr.CanonicalJSON()
	if err != nil {
		return Key{}, fmt.Errorf("cache: %w", err)
	}
	raw, err := json.Marshal(material{Program: prog, Seed: seed, Profiles: profiles})
	if err != nil {
		return Key{}, fmt.Errorf("cache: encoding key material: %w", err)
	}
	return sha256.Sum256(raw), nil
}

// Entry is one cached result reference: the ID of the job that computed
// the result plus the approximate retained size of its cached payload
// (report and, on a non-durable service, the pinned event tape).
type Entry struct {
	// ID is the job whose terminal record holds the result.
	ID string
	// Bytes is the accounted in-memory footprint of the entry.
	Bytes int64
}

// LRU is the bounded in-memory tier of the result cache: a key → Entry
// map with least-recently-used eviction by entry count. It is NOT
// self-synchronizing — the owning service serializes every call under
// its own lock, which keeps lock ordering trivial (the LRU can never
// call back out while holding anything).
type LRU struct {
	capacity int
	bytes    int64
	order    *list.List // front = most recently used; values are *lruItem
	items    map[Key]*list.Element
}

// lruItem is one resident entry and its key (needed on eviction).
type lruItem struct {
	key   Key
	entry Entry
}

// DefaultLRUEntries bounds an LRU built with NewLRU(0).
const DefaultLRUEntries = 1024

// NewLRU builds an LRU holding at most capacity entries (0 or negative
// selects DefaultLRUEntries).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = DefaultLRUEntries
	}
	return &LRU{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[Key]*list.Element),
	}
}

// Capacity returns the entry bound.
func (l *LRU) Capacity() int { return l.capacity }

// Len returns the resident entry count.
func (l *LRU) Len() int { return len(l.items) }

// Bytes returns the accounted footprint of the resident entries.
func (l *LRU) Bytes() int64 { return l.bytes }

// Get returns the entry for key, promoting it to most recently used.
func (l *LRU) Get(key Key) (Entry, bool) {
	el, ok := l.items[key]
	if !ok {
		return Entry{}, false
	}
	l.order.MoveToFront(el)
	return el.Value.(*lruItem).entry, true
}

// Add inserts (or refreshes) the entry for key as most recently used
// and returns whatever entries were evicted to make room, so the caller
// can release resources they pin (a non-durable service drops the
// evicted jobs' event tapes).
func (l *LRU) Add(key Key, entry Entry) []Entry {
	if el, ok := l.items[key]; ok {
		it := el.Value.(*lruItem)
		l.bytes += entry.Bytes - it.entry.Bytes
		it.entry = entry
		l.order.MoveToFront(el)
		return nil
	}
	l.items[key] = l.order.PushFront(&lruItem{key: key, entry: entry})
	l.bytes += entry.Bytes
	var evicted []Entry
	for len(l.items) > l.capacity {
		el := l.order.Back()
		it := el.Value.(*lruItem)
		l.order.Remove(el)
		delete(l.items, it.key)
		l.bytes -= it.entry.Bytes
		evicted = append(evicted, it.entry)
	}
	return evicted
}

// Remove drops the entry for key, if resident.
func (l *LRU) Remove(key Key) {
	el, ok := l.items[key]
	if !ok {
		return
	}
	it := el.Value.(*lruItem)
	l.order.Remove(el)
	delete(l.items, key)
	l.bytes -= it.entry.Bytes
}
