package cache

import (
	"encoding/json"
	"testing"

	"biochip/internal/assay"
	"biochip/internal/chip"
)

// testProgram parses src as an assay program.
func testProgram(t *testing.T, src string) assay.Program {
	t.Helper()
	var pr assay.Program
	if err := json.Unmarshal([]byte(src), &pr); err != nil {
		t.Fatalf("parse program: %v", err)
	}
	return pr
}

// testProfiles builds one-profile key material from a die config.
func testProfiles(t *testing.T, name string, cfg chip.Config) []ProfileMaterial {
	t.Helper()
	raw, err := ConfigJSON(cfg)
	if err != nil {
		t.Fatalf("ConfigJSON: %v", err)
	}
	return []ProfileMaterial{{Name: name, Config: raw}}
}

// TestKeyOfDiscrimination pins the key equalities the cache relies on:
// syntactic program variation and execution-irrelevant config fields
// (seed override, parallelism) collapse to one key; semantic changes —
// seed, program, profile name or die geometry — do not.
func TestKeyOfDiscrimination(t *testing.T) {
	base := `{"name":"k","ops":[{"op":"load","kind":"viable-cell","count":4},{"op":"settle"},{"op":"capture"},{"op":"scan","averaging":8},{"op":"release"}]}`
	reordered := `{"ops":[{"kind":"viable-cell","op":"load","count":4},{"op":"settle"},{"op":"capture"},{"averaging":8,"op":"scan"},{"op":"release"}],"name":"k"}`
	otherProg := `{"name":"k","ops":[{"op":"load","kind":"viable-cell","count":5},{"op":"settle"},{"op":"capture"},{"op":"scan","averaging":8},{"op":"release"}]}`

	cfg := chip.DefaultConfig()
	profiles := testProfiles(t, "die", cfg)

	key := func(src string, seed uint64, profs []ProfileMaterial) Key {
		k, err := KeyOf(testProgram(t, src), seed, profs)
		if err != nil {
			t.Fatalf("KeyOf: %v", err)
		}
		if k.Zero() {
			t.Fatal("KeyOf returned the reserved zero key")
		}
		return k
	}

	want := key(base, 7, profiles)
	if got := key(reordered, 7, profiles); got != want {
		t.Errorf("reordered JSON changed the key: %s vs %s", got, want)
	}

	seedCfg := cfg
	seedCfg.Seed = 99
	seedCfg.Parallelism = 8
	if got := key(base, 7, testProfiles(t, "die", seedCfg)); got != want {
		t.Errorf("config seed/parallelism changed the key: %s vs %s", got, want)
	}

	if got := key(base, 8, profiles); got == want {
		t.Error("different request seed produced the same key")
	}
	if got := key(otherProg, 7, profiles); got == want {
		t.Error("different program produced the same key")
	}
	if got := key(base, 7, testProfiles(t, "die2", cfg)); got == want {
		t.Error("different profile name produced the same key")
	}
	bigCfg := cfg
	bigCfg.Array.Cols += 8
	if got := key(base, 7, testProfiles(t, "die", bigCfg)); got == want {
		t.Error("different die geometry produced the same key")
	}
	two := append(testProfiles(t, "die", cfg), testProfiles(t, "die2", cfg)...)
	if got := key(base, 7, two); got == want {
		t.Error("different eligible profile set produced the same key")
	}
}

// TestLRU pins the eviction policy: capacity bound, recency promotion
// on Get, refresh-in-place on duplicate Add, byte accounting, and that
// Add reports exactly the evicted entries.
func TestLRU(t *testing.T) {
	k := func(b byte) Key { var key Key; key[0] = b; return key }

	l := NewLRU(2)
	if l.Capacity() != 2 {
		t.Fatalf("capacity = %d, want 2", l.Capacity())
	}
	if ev := l.Add(k(1), Entry{ID: "a-000001", Bytes: 10}); ev != nil {
		t.Fatalf("unexpected eviction on first add: %+v", ev)
	}
	if ev := l.Add(k(2), Entry{ID: "a-000002", Bytes: 20}); ev != nil {
		t.Fatalf("unexpected eviction on second add: %+v", ev)
	}
	if l.Len() != 2 || l.Bytes() != 30 {
		t.Fatalf("len=%d bytes=%d, want 2/30", l.Len(), l.Bytes())
	}

	// Touch key 1 so key 2 becomes the eviction victim.
	if e, ok := l.Get(k(1)); !ok || e.ID != "a-000001" {
		t.Fatalf("Get(1) = %+v, %v", e, ok)
	}
	ev := l.Add(k(3), Entry{ID: "a-000003", Bytes: 5})
	if len(ev) != 1 || ev[0].ID != "a-000002" {
		t.Fatalf("evicted %+v, want the LRU entry a-000002", ev)
	}
	if _, ok := l.Get(k(2)); ok {
		t.Fatal("evicted key still resident")
	}
	if l.Len() != 2 || l.Bytes() != 15 {
		t.Fatalf("after eviction len=%d bytes=%d, want 2/15", l.Len(), l.Bytes())
	}

	// Refresh in place: no eviction, byte accounting follows the update.
	if ev := l.Add(k(1), Entry{ID: "a-000001", Bytes: 30}); ev != nil {
		t.Fatalf("refresh evicted %+v", ev)
	}
	if l.Len() != 2 || l.Bytes() != 35 {
		t.Fatalf("after refresh len=%d bytes=%d, want 2/35", l.Len(), l.Bytes())
	}

	l.Remove(k(1))
	if _, ok := l.Get(k(1)); ok || l.Len() != 1 || l.Bytes() != 5 {
		t.Fatalf("after remove len=%d bytes=%d", l.Len(), l.Bytes())
	}
	l.Remove(k(1)) // removing a missing key is a no-op

	if def := NewLRU(0); def.Capacity() != DefaultLRUEntries {
		t.Fatalf("NewLRU(0) capacity = %d, want %d", def.Capacity(), DefaultLRUEntries)
	}
}
