package electrode

import (
	"errors"
	"fmt"
)

// Transaction is one programming-bus operation: either a row select
// (decoder strobe overhead) or a data word carrying packed drive codes.
type Transaction struct {
	// Row is the target row.
	Row int
	// IsSelect marks decoder/strobe overhead cycles.
	IsSelect bool
	// Word holds BusWidth bits of packed drive codes (BitsPerPixel bits
	// per electrode, little-endian within the word).
	Word uint64
	// WordIdx is the word position within the row.
	WordIdx int
}

// wordsPerRow returns data words needed per row.
func (c Config) wordsPerRow() int {
	return (c.Cols*c.BitsPerPixel + c.BusWidth - 1) / c.BusWidth
}

// EncodeFrame produces the exact bus transaction stream that programs
// the whole frame: for each row, RowOverheadCycles select transactions
// followed by the packed data words. The stream length equals the cycle
// count the timing model charges — the bit-level ground truth for
// FrameProgramTime.
func (c Config) EncodeFrame(f *Frame) ([]Transaction, error) {
	if f.cols != c.Cols || f.rows != c.Rows {
		return nil, fmt.Errorf("electrode: frame %dx%d does not match config %dx%d",
			f.cols, f.rows, c.Cols, c.Rows)
	}
	if c.BitsPerPixel > 8 || c.BitsPerPixel < 1 {
		return nil, errors.New("electrode: unsupported pixel depth")
	}
	txs := make([]Transaction, 0, c.Rows*(c.wordsPerRow()+c.RowOverheadCycles))
	for row := 0; row < c.Rows; row++ {
		txs = c.encodeRow(f, row, txs)
	}
	return txs, nil
}

// EncodeDelta produces the transaction stream that updates the array
// from cur to next, rewriting only dirty rows.
func (c Config) EncodeDelta(cur, next *Frame) ([]Transaction, error) {
	if cur.cols != c.Cols || cur.rows != c.Rows || next.cols != c.Cols || next.rows != c.Rows {
		return nil, errors.New("electrode: frame dims do not match config")
	}
	var txs []Transaction
	for row := 0; row < c.Rows; row++ {
		dirty := false
		base := row * c.Cols
		for col := 0; col < c.Cols; col++ {
			if cur.drive[base+col] != next.drive[base+col] {
				dirty = true
				break
			}
		}
		if dirty {
			txs = c.encodeRow(next, row, txs)
		}
	}
	return txs, nil
}

func (c Config) encodeRow(f *Frame, row int, txs []Transaction) []Transaction {
	for i := 0; i < c.RowOverheadCycles; i++ {
		txs = append(txs, Transaction{Row: row, IsSelect: true})
	}
	bits := c.BitsPerPixel
	perWord := c.BusWidth / bits
	if perWord == 0 {
		perWord = 1
	}
	words := c.wordsPerRow()
	base := row * c.Cols
	for w := 0; w < words; w++ {
		var word uint64
		for k := 0; k < perWord; k++ {
			col := w*perWord + k
			if col >= c.Cols {
				break
			}
			word |= uint64(f.drive[base+col]) << (k * bits)
		}
		txs = append(txs, Transaction{Row: row, Word: word, WordIdx: w})
	}
	return txs
}

// DecodeTransactions reconstructs the drive state written by a
// transaction stream, applied on top of the given base frame (use a
// fresh frame for full-stream decoding). It is the inverse of
// EncodeFrame/EncodeDelta and exists so tests can prove the encoding
// loses nothing.
func (c Config) DecodeTransactions(base *Frame, txs []Transaction) (*Frame, error) {
	if base.cols != c.Cols || base.rows != c.Rows {
		return nil, errors.New("electrode: base frame dims do not match config")
	}
	out := base.Clone()
	bits := c.BitsPerPixel
	perWord := c.BusWidth / bits
	if perWord == 0 {
		perWord = 1
	}
	mask := uint64(1)<<bits - 1
	for _, tx := range txs {
		if tx.IsSelect {
			continue
		}
		if tx.Row < 0 || tx.Row >= c.Rows {
			return nil, fmt.Errorf("electrode: transaction row %d out of range", tx.Row)
		}
		baseIdx := tx.Row * c.Cols
		for k := 0; k < perWord; k++ {
			col := tx.WordIdx*perWord + k
			if col >= c.Cols {
				break
			}
			code := (tx.Word >> (k * bits)) & mask
			out.drive[baseIdx+col] = Drive(code)
		}
	}
	return out, nil
}

// CycleCount returns the clock cycles a transaction stream occupies
// (one cycle per transaction, select or data).
func CycleCount(txs []Transaction) int { return len(txs) }
