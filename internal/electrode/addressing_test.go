package electrode

import (
	"testing"
	"testing/quick"

	"biochip/internal/geom"
)

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.Cols, cfg.Rows = 16, 12
	return cfg
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	cfg := smallCfg()
	f := NewFrame(cfg.Cols, cfg.Rows)
	f.SetCage(geom.C(5, 5))
	f.SetCage(geom.C(10, 8))
	f.Set(geom.C(0, 0), Ground)
	txs, err := cfg.EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cfg.DecodeTransactions(NewFrame(cfg.Cols, cfg.Rows), txs)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(f) {
		t.Fatal("encode/decode roundtrip lost information")
	}
}

func TestEncodeCycleCountMatchesTimingModel(t *testing.T) {
	// The bit-level stream must occupy exactly the cycles the timing
	// model charges — FrameProgramTime is not hand-waved.
	cfg := smallCfg()
	f := NewFrame(cfg.Cols, cfg.Rows)
	txs, err := cfg.EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	wantCycles := cfg.RowProgramCycles() * cfg.Rows
	if CycleCount(txs) != wantCycles {
		t.Fatalf("stream cycles %d != timing model %d", CycleCount(txs), wantCycles)
	}
	// And at paper scale too.
	big := DefaultConfig()
	fb := NewFrame(big.Cols, big.Rows)
	txsBig, err := big.EncodeFrame(fb)
	if err != nil {
		t.Fatal(err)
	}
	if CycleCount(txsBig) != big.RowProgramCycles()*big.Rows {
		t.Fatal("paper-scale cycle count mismatch")
	}
}

func TestEncodeDeltaOnlyDirtyRows(t *testing.T) {
	cfg := smallCfg()
	cur := NewFrame(cfg.Cols, cfg.Rows)
	next := cur.Clone()
	// A cage on a PhaseA background only flips the centre electrode
	// (row 6); add a Ground electrode on row 2 for a second dirty row.
	next.SetCage(geom.C(8, 6))
	next.Set(geom.C(3, 2), Ground)
	txs, err := cfg.EncodeDelta(cur, next)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[int]bool{}
	for _, tx := range txs {
		rows[tx.Row] = true
	}
	if len(rows) != 2 || !rows[6] || !rows[2] {
		t.Fatalf("delta touched rows %v, want {2,6}", rows)
	}
	wantCycles := 2 * cfg.RowProgramCycles()
	if CycleCount(txs) != wantCycles {
		t.Fatalf("delta cycles %d != %d", CycleCount(txs), wantCycles)
	}
	// Applying the delta on the current frame reproduces next exactly.
	got, err := cfg.DecodeTransactions(cur, txs)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(next) {
		t.Fatal("delta decode mismatch")
	}
}

func TestEncodeDeltaIdenticalFramesIsEmpty(t *testing.T) {
	cfg := smallCfg()
	f := NewFrame(cfg.Cols, cfg.Rows)
	txs, err := cfg.EncodeDelta(f, f.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) != 0 {
		t.Fatalf("identical frames need no transactions, got %d", len(txs))
	}
}

func TestEncodeValidation(t *testing.T) {
	cfg := smallCfg()
	if _, err := cfg.EncodeFrame(NewFrame(3, 3)); err == nil {
		t.Error("mismatched frame should fail")
	}
	if _, err := cfg.EncodeDelta(NewFrame(3, 3), NewFrame(3, 3)); err == nil {
		t.Error("mismatched delta frames should fail")
	}
	if _, err := cfg.DecodeTransactions(NewFrame(3, 3), nil); err == nil {
		t.Error("mismatched base should fail")
	}
}

func TestRoundtripProperty(t *testing.T) {
	cfg := smallCfg()
	f := func(cells []uint16) bool {
		fr := NewFrame(cfg.Cols, cfg.Rows)
		for _, v := range cells {
			col := int(v) % cfg.Cols
			row := int(v>>4) % cfg.Rows
			fr.Set(geom.C(col, row), Drive(v%3))
		}
		txs, err := cfg.EncodeFrame(fr)
		if err != nil {
			return false
		}
		got, err := cfg.DecodeTransactions(NewFrame(cfg.Cols, cfg.Rows), txs)
		if err != nil {
			return false
		}
		return got.Equal(fr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeltaRoundtripProperty(t *testing.T) {
	cfg := smallCfg()
	f := func(aCells, bCells []uint16) bool {
		cur := NewFrame(cfg.Cols, cfg.Rows)
		for _, v := range aCells {
			cur.Set(geom.C(int(v)%cfg.Cols, int(v>>4)%cfg.Rows), Drive(v%3))
		}
		next := cur.Clone()
		for _, v := range bCells {
			next.Set(geom.C(int(v)%cfg.Cols, int(v>>4)%cfg.Rows), Drive((v+1)%3))
		}
		txs, err := cfg.EncodeDelta(cur, next)
		if err != nil {
			return false
		}
		got, err := cfg.DecodeTransactions(cur, txs)
		if err != nil {
			return false
		}
		return got.Equal(next)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
