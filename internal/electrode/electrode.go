// Package electrode models the programmable electrode array at the heart
// of the CMOS biochip: a grid of metal electrodes, each with embedded
// pattern memory, driven by one of two counter-phase AC waveforms or held
// at a DC counter-electrode potential.
//
// The model follows the architecture of the authors' chip (IEDM'00 /
// JSSC'03 lineage referenced by the paper): electrodes are programmed row
// by row through a row decoder and column data latches, so reprogramming
// the whole array costs Rows × (Cols/BusWidth + overhead) clock cycles.
// The paper's second consideration — electronics is vastly faster than
// mass transfer — is quantified by comparing this programming time against
// cell motion timescales (see the timing experiment E5).
package electrode

import (
	"fmt"

	"biochip/internal/geom"
	"biochip/internal/units"
)

// Drive is the per-electrode actuation state stored in the pixel memory.
type Drive uint8

// Electrode drive states. In the two-phase DEP scheme, a cage is formed by
// driving a central electrode in counter-phase (PhaseB) against in-phase
// neighbours (PhaseA), with the conductive lid held at the counter
// electrode potential.
const (
	// PhaseA drives the electrode with the in-phase sinusoid +V·sin(ωt).
	PhaseA Drive = iota
	// PhaseB drives the electrode with the counter-phase sinusoid
	// −V·sin(ωt).
	PhaseB
	// Ground ties the electrode to the AC ground (lid potential).
	Ground
)

var driveNames = [...]string{"A", "B", "gnd"}

// String implements fmt.Stringer.
func (d Drive) String() string {
	if int(d) < len(driveNames) {
		return driveNames[d]
	}
	return fmt.Sprintf("Drive(%d)", uint8(d))
}

// Config describes the physical and electrical geometry of an array.
type Config struct {
	// Cols, Rows are the electrode grid dimensions.
	Cols, Rows int
	// Pitch is the electrode pitch in metres.
	Pitch float64
	// Voltage is the actuation sinusoid amplitude in volts.
	Voltage float64
	// Frequency is the actuation frequency in hertz.
	Frequency float64
	// ClockHz is the digital programming clock.
	ClockHz float64
	// BusWidth is the number of column bits loaded per clock.
	BusWidth int
	// RowOverheadCycles is decoder/strobe overhead per row.
	RowOverheadCycles int
	// BitsPerPixel is the pattern memory depth per electrode.
	BitsPerPixel int
	// ElectrodeCap is the electrode-to-liquid capacitance in farads,
	// used for actuation energy estimates.
	ElectrodeCap float64
}

// DefaultConfig returns the paper-scale platform: >100k electrodes at
// 20 µm pitch on a 10 MHz programming clock.
func DefaultConfig() Config {
	return Config{
		Cols:              320,
		Rows:              320,
		Pitch:             20 * units.Micron,
		Voltage:           3.3,
		Frequency:         1 * units.Megahertz,
		ClockHz:           10 * units.Megahertz,
		BusWidth:          32,
		RowOverheadCycles: 4,
		BitsPerPixel:      2,
		ElectrodeCap:      20 * units.Femtofarad,
	}
}

// Validate reports whether the configuration is physically meaningful.
func (c Config) Validate() error {
	switch {
	case c.Cols <= 0 || c.Rows <= 0:
		return fmt.Errorf("electrode: non-positive array dims %dx%d", c.Cols, c.Rows)
	case c.Pitch <= 0:
		return fmt.Errorf("electrode: non-positive pitch %g", c.Pitch)
	case c.Voltage <= 0:
		return fmt.Errorf("electrode: non-positive voltage %g", c.Voltage)
	case c.Frequency <= 0:
		return fmt.Errorf("electrode: non-positive frequency %g", c.Frequency)
	case c.ClockHz <= 0:
		return fmt.Errorf("electrode: non-positive clock %g", c.ClockHz)
	case c.BusWidth <= 0:
		return fmt.Errorf("electrode: non-positive bus width %d", c.BusWidth)
	case c.RowOverheadCycles < 0:
		return fmt.Errorf("electrode: negative row overhead %d", c.RowOverheadCycles)
	}
	return nil
}

// NumElectrodes returns the total electrode count.
func (c Config) NumElectrodes() int { return c.Cols * c.Rows }

// ArrayArea returns the active-array silicon area in m².
func (c Config) ArrayArea() float64 {
	return c.Pitch * c.Pitch * float64(c.NumElectrodes())
}

// Bounds returns the array extent as a grid rectangle.
func (c Config) Bounds() geom.Rect { return geom.GridRect(c.Cols, c.Rows) }

// RowProgramCycles returns clock cycles needed to program one row.
func (c Config) RowProgramCycles() int {
	words := (c.Cols*c.BitsPerPixel + c.BusWidth - 1) / c.BusWidth
	return words + c.RowOverheadCycles
}

// FrameProgramTime returns the wall-clock time to reprogram the entire
// array once (seconds). This is the actuation-update latency that E5
// compares against cell transit times.
func (c Config) FrameProgramTime() float64 {
	cycles := c.RowProgramCycles() * c.Rows
	return float64(cycles) / c.ClockHz
}

// RowsProgramTime returns the time to program just n rows (delta
// programming: the row decoder is random-access, so an update that
// touches few rows costs only those rows plus fixed overhead).
func (c Config) RowsProgramTime(n int) float64 {
	if n < 0 {
		n = 0
	}
	if n > c.Rows {
		n = c.Rows
	}
	cycles := c.RowProgramCycles() * n
	return float64(cycles) / c.ClockHz
}

// MaxFrameRate returns the maximum full-array reprogram rate in Hz.
func (c Config) MaxFrameRate() float64 { return 1 / c.FrameProgramTime() }

// Frame is one full-array actuation pattern.
type Frame struct {
	cols, rows int
	drive      []Drive
}

// NewFrame allocates a frame with every electrode in PhaseA (the uniform
// background state that forms no cages).
func NewFrame(cols, rows int) *Frame {
	if cols <= 0 || rows <= 0 {
		panic(fmt.Sprintf("electrode: invalid frame dims %dx%d", cols, rows))
	}
	return &Frame{cols: cols, rows: rows, drive: make([]Drive, cols*rows)}
}

// Cols returns the frame width.
func (f *Frame) Cols() int { return f.cols }

// Rows returns the frame height.
func (f *Frame) Rows() int { return f.rows }

// Bounds returns the frame extent.
func (f *Frame) Bounds() geom.Rect { return geom.GridRect(f.cols, f.rows) }

// idx converts a cell to a flat index; callers must bounds-check first.
func (f *Frame) idx(c geom.Cell) int { return c.Row*f.cols + c.Col }

// In reports whether c lies inside the frame.
func (f *Frame) In(c geom.Cell) bool {
	return c.Col >= 0 && c.Col < f.cols && c.Row >= 0 && c.Row < f.rows
}

// Get returns the drive state at c; out-of-bounds cells read as PhaseA.
func (f *Frame) Get(c geom.Cell) Drive {
	if !f.In(c) {
		return PhaseA
	}
	return f.drive[f.idx(c)]
}

// Set assigns the drive state at c; out-of-bounds writes are ignored.
func (f *Frame) Set(c geom.Cell, d Drive) {
	if f.In(c) {
		f.drive[f.idx(c)] = d
	}
}

// Fill sets every electrode to d.
func (f *Frame) Fill(d Drive) {
	for i := range f.drive {
		f.drive[i] = d
	}
}

// Clone returns a deep copy.
func (f *Frame) Clone() *Frame {
	out := NewFrame(f.cols, f.rows)
	copy(out.drive, f.drive)
	return out
}

// Equal reports whether two frames have identical dimensions and drive.
func (f *Frame) Equal(g *Frame) bool {
	if f.cols != g.cols || f.rows != g.rows {
		return false
	}
	for i := range f.drive {
		if f.drive[i] != g.drive[i] {
			return false
		}
	}
	return true
}

// Diff returns the number of electrodes whose drive differs between f and
// g. Frames must have identical dimensions.
func (f *Frame) Diff(g *Frame) int {
	if f.cols != g.cols || f.rows != g.rows {
		panic("electrode: Diff dimension mismatch")
	}
	n := 0
	for i := range f.drive {
		if f.drive[i] != g.drive[i] {
			n++
		}
	}
	return n
}

// DirtyRows returns the number of rows on which f and g differ — the
// rows a delta reprogram must rewrite. Frames must have identical
// dimensions.
func (f *Frame) DirtyRows(g *Frame) int {
	if f.cols != g.cols || f.rows != g.rows {
		panic("electrode: DirtyRows dimension mismatch")
	}
	dirty := 0
	for r := 0; r < f.rows; r++ {
		base := r * f.cols
		for c := 0; c < f.cols; c++ {
			if f.drive[base+c] != g.drive[base+c] {
				dirty++
				break
			}
		}
	}
	return dirty
}

// Count returns how many electrodes are in drive state d.
func (f *Frame) Count(d Drive) int {
	n := 0
	for _, v := range f.drive {
		if v == d {
			n++
		}
	}
	return n
}

// SetCage writes the canonical closed-cage pattern centred at c: the
// centre electrode in counter-phase (PhaseB) surrounded by its 8
// neighbours in PhaseA. Electrodes outside the frame are skipped.
func (f *Frame) SetCage(c geom.Cell) {
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			n := geom.C(c.Col+dc, c.Row+dr)
			if dc == 0 && dr == 0 {
				f.Set(n, PhaseB)
			} else if f.Get(n) != PhaseB {
				f.Set(n, PhaseA)
			}
		}
	}
}

// CageCenters scans the frame and returns the cells holding the cage
// pattern (a PhaseB electrode none of whose 4-neighbours is PhaseB).
func (f *Frame) CageCenters() []geom.Cell {
	var out []geom.Cell
	for row := 0; row < f.rows; row++ {
		for col := 0; col < f.cols; col++ {
			c := geom.C(col, row)
			if f.Get(c) != PhaseB {
				continue
			}
			isolated := true
			for _, d := range geom.Dirs4 {
				if n := c.Step(d); f.In(n) && f.Get(n) == PhaseB {
					isolated = false
					break
				}
			}
			if isolated {
				out = append(out, c)
			}
		}
	}
	return out
}

// Array couples a Config with a live frame and accumulates programming
// statistics (frames written, electrodes toggled, elapsed chip time and
// actuation energy).
type Array struct {
	cfg     Config
	current *Frame

	framesWritten int
	toggles       int64
	elapsed       float64
	energy        float64
}

// New builds an Array from a validated config.
func New(cfg Config) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Array{cfg: cfg, current: NewFrame(cfg.Cols, cfg.Rows)}, nil
}

// Config returns the array configuration.
func (a *Array) Config() Config { return a.cfg }

// Frame returns the currently programmed frame (shared; treat as
// read-only).
func (a *Array) Frame() *Frame { return a.current }

// Program writes a new frame into the array, accounting the programming
// time, the number of toggled electrodes and the actuation energy spent
// re-charging toggled electrode capacitances.
func (a *Array) Program(f *Frame) error {
	return a.program(f, false)
}

// ProgramDelta writes a new frame rewriting only the rows that changed
// (random-access row decoder). Semantically identical to Program but
// charges RowsProgramTime(dirty rows) instead of the full frame time —
// the update latency for sparse cage moves collapses accordingly.
func (a *Array) ProgramDelta(f *Frame) error {
	return a.program(f, true)
}

func (a *Array) program(f *Frame, delta bool) error {
	if f.cols != a.cfg.Cols || f.rows != a.cfg.Rows {
		return fmt.Errorf("electrode: frame %dx%d does not match array %dx%d",
			f.cols, f.rows, a.cfg.Cols, a.cfg.Rows)
	}
	tog := a.current.Diff(f)
	a.toggles += int64(tog)
	a.framesWritten++
	if delta {
		a.elapsed += a.cfg.RowsProgramTime(a.current.DirtyRows(f))
	} else {
		a.elapsed += a.cfg.FrameProgramTime()
	}
	// Each toggled electrode swings ~2V across its capacitance: E = ½CV²
	// per edge, with a 2V swing between phases → 2·C·V².
	v := a.cfg.Voltage
	a.energy += 2 * a.cfg.ElectrodeCap * v * v * float64(tog)
	a.current = f.Clone()
	return nil
}

// Stats reports cumulative programming activity.
type Stats struct {
	FramesWritten     int
	ElectrodesToggled int64
	ElapsedTime       float64
	ActuationEnergy   float64
}

// Stats returns cumulative counters since construction.
func (a *Array) Stats() Stats {
	return Stats{
		FramesWritten:     a.framesWritten,
		ElectrodesToggled: a.toggles,
		ElapsedTime:       a.elapsed,
		ActuationEnergy:   a.energy,
	}
}
