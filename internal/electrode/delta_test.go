package electrode

import (
	"math"
	"testing"

	"biochip/internal/geom"
)

func TestDirtyRows(t *testing.T) {
	a := NewFrame(10, 10)
	b := a.Clone()
	if a.DirtyRows(b) != 0 {
		t.Fatal("identical frames have no dirty rows")
	}
	b.Set(geom.C(3, 4), PhaseB)
	b.Set(geom.C(7, 4), Ground) // same row
	if got := a.DirtyRows(b); got != 1 {
		t.Fatalf("DirtyRows = %d, want 1", got)
	}
	b.Set(geom.C(0, 9), PhaseB)
	if got := a.DirtyRows(b); got != 2 {
		t.Fatalf("DirtyRows = %d, want 2", got)
	}
}

func TestDirtyRowsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched dims should panic")
		}
	}()
	NewFrame(2, 2).DirtyRows(NewFrame(3, 3))
}

func TestRowsProgramTime(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.RowsProgramTime(0); got != 0 {
		t.Errorf("zero rows should cost nothing, got %g", got)
	}
	full := cfg.FrameProgramTime()
	if got := cfg.RowsProgramTime(cfg.Rows); math.Abs(got-full) > 1e-15 {
		t.Errorf("all rows should equal full frame: %g vs %g", got, full)
	}
	if got := cfg.RowsProgramTime(cfg.Rows + 50); math.Abs(got-full) > 1e-15 {
		t.Error("over-count should clamp to full frame")
	}
	one := cfg.RowsProgramTime(1)
	if math.Abs(one*float64(cfg.Rows)-full) > 1e-12 {
		t.Errorf("per-row time inconsistent: %g × %d != %g", one, cfg.Rows, full)
	}
}

func TestProgramDeltaFasterForSparseUpdates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cols, cfg.Rows = 64, 64

	full, _ := New(cfg)
	delta, _ := New(cfg)

	f := NewFrame(64, 64)
	f.SetCage(geom.C(30, 30))
	if err := full.Program(f); err != nil {
		t.Fatal(err)
	}
	if err := delta.ProgramDelta(f); err != nil {
		t.Fatal(err)
	}
	// Moving one cage east touches 3 rows (the 3×3 pattern shifts) —
	// delta programming must be ~64/6 times faster than full.
	g := NewFrame(64, 64)
	g.SetCage(geom.C(31, 30))
	tFull0 := full.Stats().ElapsedTime
	tDelta0 := delta.Stats().ElapsedTime
	if err := full.Program(g); err != nil {
		t.Fatal(err)
	}
	if err := delta.ProgramDelta(g); err != nil {
		t.Fatal(err)
	}
	dtFull := full.Stats().ElapsedTime - tFull0
	dtDelta := delta.Stats().ElapsedTime - tDelta0
	if dtDelta >= dtFull/10 {
		t.Errorf("delta update %g should be ≫10x faster than full %g", dtDelta, dtFull)
	}
	// Semantics identical: both arrays hold the same frame.
	if !full.Frame().Equal(delta.Frame()) {
		t.Error("delta programming changed semantics")
	}
	// Energy identical (same toggles).
	if full.Stats().ActuationEnergy != delta.Stats().ActuationEnergy {
		t.Error("energy must not depend on programming mode")
	}
}

func TestProgramDeltaRejectsWrongSize(t *testing.T) {
	a, _ := New(DefaultConfig())
	if err := a.ProgramDelta(NewFrame(3, 3)); err == nil {
		t.Error("mismatched frame should be rejected")
	}
}
