package electrode

import (
	"math"
	"testing"
	"testing/quick"

	"biochip/internal/geom"
	"biochip/internal/units"
)

func TestDefaultConfigMatchesPaperScale(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumElectrodes() < 100000 {
		t.Errorf("paper claims >100,000 electrodes; default has %d", cfg.NumElectrodes())
	}
	if cfg.Pitch < 15*units.Micron || cfg.Pitch > 35*units.Micron {
		t.Errorf("pitch %g outside the cell-sized 20-30 µm class", cfg.Pitch)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cols = 0 },
		func(c *Config) { c.Rows = -1 },
		func(c *Config) { c.Pitch = 0 },
		func(c *Config) { c.Voltage = -3 },
		func(c *Config) { c.Frequency = 0 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.BusWidth = 0 },
		func(c *Config) { c.RowOverheadCycles = -1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
}

func TestFrameProgramTime(t *testing.T) {
	cfg := DefaultConfig()
	// 320 cols × 2 bits / 32-bit bus = 20 words + 4 overhead = 24 cycles
	// per row; × 320 rows = 7680 cycles; at 10 MHz = 768 µs.
	if got := cfg.RowProgramCycles(); got != 24 {
		t.Fatalf("RowProgramCycles = %d, want 24", got)
	}
	want := 7680.0 / 10e6
	if got := cfg.FrameProgramTime(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("FrameProgramTime = %g, want %g", got, want)
	}
	if rate := cfg.MaxFrameRate(); math.Abs(rate-1/want) > 1e-6 {
		t.Fatalf("MaxFrameRate = %g", rate)
	}
}

func TestProgramTimeFastVsCellMotion(t *testing.T) {
	// The paper's C2: full-array reprogramming must be far faster than a
	// cell crossing one pitch at 10-100 µm/s.
	cfg := DefaultConfig()
	cellTransit := cfg.Pitch / (100 * units.Micron) // fastest cells: s
	slack := cellTransit / cfg.FrameProgramTime()
	if slack < 100 {
		t.Errorf("slack factor %g too small; electronics should dominate mass transfer", slack)
	}
}

func TestFrameGetSet(t *testing.T) {
	f := NewFrame(4, 3)
	c := geom.C(2, 1)
	f.Set(c, PhaseB)
	if f.Get(c) != PhaseB {
		t.Fatal("Set/Get roundtrip failed")
	}
	// Out-of-bounds reads default, writes are ignored.
	if f.Get(geom.C(-1, 0)) != PhaseA {
		t.Error("OOB read should be PhaseA")
	}
	f.Set(geom.C(99, 99), Ground) // must not panic
	if f.Count(Ground) != 0 {
		t.Error("OOB write should be ignored")
	}
}

func TestFrameFillCloneEqualDiff(t *testing.T) {
	f := NewFrame(5, 5)
	f.Fill(Ground)
	if f.Count(Ground) != 25 {
		t.Fatal("Fill failed")
	}
	g := f.Clone()
	if !f.Equal(g) {
		t.Fatal("clone should be equal")
	}
	g.Set(geom.C(0, 0), PhaseB)
	if f.Equal(g) {
		t.Fatal("modified clone should differ")
	}
	if d := f.Diff(g); d != 1 {
		t.Fatalf("Diff = %d, want 1", d)
	}
	if f.Get(geom.C(0, 0)) != Ground {
		t.Fatal("clone aliased the original")
	}
}

func TestFrameDiffPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Diff with mismatched dims should panic")
		}
	}()
	NewFrame(2, 2).Diff(NewFrame(3, 3))
}

func TestSetCagePattern(t *testing.T) {
	f := NewFrame(5, 5)
	f.Fill(PhaseA)
	center := geom.C(2, 2)
	f.SetCage(center)
	if f.Get(center) != PhaseB {
		t.Fatal("cage centre should be PhaseB")
	}
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			if dc == 0 && dr == 0 {
				continue
			}
			n := geom.C(2+dc, 2+dr)
			if f.Get(n) != PhaseA {
				t.Errorf("neighbour %v should be PhaseA", n)
			}
		}
	}
	centers := f.CageCenters()
	if len(centers) != 1 || centers[0] != center {
		t.Fatalf("CageCenters = %v", centers)
	}
}

func TestCageCentersMultiple(t *testing.T) {
	f := NewFrame(20, 20)
	want := []geom.Cell{geom.C(3, 3), geom.C(10, 3), geom.C(3, 10), geom.C(16, 16)}
	for _, c := range want {
		f.SetCage(c)
	}
	got := f.CageCenters()
	if len(got) != len(want) {
		t.Fatalf("found %d cages, want %d: %v", len(got), len(want), got)
	}
	seen := map[geom.Cell]bool{}
	for _, c := range got {
		seen[c] = true
	}
	for _, c := range want {
		if !seen[c] {
			t.Errorf("cage at %v not detected", c)
		}
	}
}

func TestCageCentersIgnoresAdjacentB(t *testing.T) {
	// Two adjacent PhaseB electrodes form a merged trap, not two
	// isolated cages.
	f := NewFrame(8, 8)
	f.Set(geom.C(3, 3), PhaseB)
	f.Set(geom.C(4, 3), PhaseB)
	if got := f.CageCenters(); len(got) != 0 {
		t.Fatalf("adjacent PhaseB should not count as cages, got %v", got)
	}
}

func TestCageAtArrayEdge(t *testing.T) {
	f := NewFrame(6, 6)
	f.SetCage(geom.C(0, 0)) // clipped cage, must not panic
	if f.Get(geom.C(0, 0)) != PhaseB {
		t.Fatal("edge cage centre should be set")
	}
	centers := f.CageCenters()
	if len(centers) != 1 || centers[0] != geom.C(0, 0) {
		t.Fatalf("edge cage not detected: %v", centers)
	}
}

func TestArrayProgramAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cols, cfg.Rows = 16, 16
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFrame(16, 16)
	f.SetCage(geom.C(8, 8))
	if err := a.Program(f); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.FramesWritten != 1 {
		t.Errorf("FramesWritten = %d", st.FramesWritten)
	}
	// Only the centre toggled A→B (neighbours were already PhaseA).
	if st.ElectrodesToggled != 1 {
		t.Errorf("ElectrodesToggled = %d, want 1", st.ElectrodesToggled)
	}
	if st.ElapsedTime <= 0 || st.ActuationEnergy <= 0 {
		t.Error("elapsed time and energy should accumulate")
	}
	// Energy: 2·C·V² per toggle.
	wantE := 2 * cfg.ElectrodeCap * cfg.Voltage * cfg.Voltage
	if math.Abs(st.ActuationEnergy-wantE) > 1e-20 {
		t.Errorf("energy = %g, want %g", st.ActuationEnergy, wantE)
	}
}

func TestArrayProgramRejectsWrongSize(t *testing.T) {
	a, _ := New(DefaultConfig())
	if err := a.Program(NewFrame(3, 3)); err == nil {
		t.Fatal("mismatched frame should be rejected")
	}
}

func TestArrayProgramIsolation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cols, cfg.Rows = 8, 8
	a, _ := New(cfg)
	f := NewFrame(8, 8)
	f.SetCage(geom.C(4, 4))
	_ = a.Program(f)
	// Mutating the caller's frame afterwards must not affect the array.
	f.Fill(Ground)
	if a.Frame().Get(geom.C(4, 4)) != PhaseB {
		t.Fatal("Program must deep-copy the frame")
	}
}

func TestProgramTimeScalesWithArray(t *testing.T) {
	small := DefaultConfig()
	small.Cols, small.Rows = 100, 100
	big := DefaultConfig()
	big.Cols, big.Rows = 400, 400
	if big.FrameProgramTime() <= small.FrameProgramTime() {
		t.Error("bigger arrays must take longer to program")
	}
}

func TestCagePatternPropertyRoundtrip(t *testing.T) {
	// Property: for any interior cell, SetCage then CageCenters finds
	// exactly that cell.
	f := func(col, row uint8) bool {
		fr := NewFrame(40, 40)
		c := geom.C(1+int(col)%38, 1+int(row)%38)
		fr.SetCage(c)
		got := fr.CageCenters()
		return len(got) == 1 && got[0] == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDriveString(t *testing.T) {
	if PhaseA.String() != "A" || PhaseB.String() != "B" || Ground.String() != "gnd" {
		t.Error("drive names wrong")
	}
	if Drive(9).String() != "Drive(9)" {
		t.Error("unknown drive name")
	}
}

func TestArrayAreaMatchesPaper(t *testing.T) {
	// 320×320 at 20 µm = 6.4×6.4 mm active area — a realistic die.
	cfg := DefaultConfig()
	area := cfg.ArrayArea()
	if area < 20e-6 || area > 60e-6 {
		t.Errorf("array area %g m² implausible for the platform", area)
	}
}
