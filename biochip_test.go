package biochip

import (
	"reflect"
	"testing"

	"biochip/internal/units"
)

func TestFacadeDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Array.NumElectrodes() < 100000 {
		t.Errorf("default platform has %d electrodes; paper claims >100,000",
			cfg.Array.NumElectrodes())
	}
}

func TestFacadeEndToEndSmall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Array.Cols, cfg.Array.Rows = 40, 40
	cfg.SensorParallelism = 40
	cfg.Seed = 3

	pr := AssayProgram{
		Name: "facade-smoke",
		Ops: []AssayOp{
			OpLoad{Kind: ViableCell(), Count: 6},
			OpSettle{},
			OpCapture{},
			OpScan{Averaging: 8},
			OpGather{Anchor: C(1, 1)},
			OpReleaseAll{},
		},
	}
	rep, err := RunAssay(pr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trapped == 0 || rep.Duration <= 0 {
		t.Errorf("implausible report: %+v", rep)
	}
	est, err := EstimateAssayDuration(pr, cfg)
	if err != nil || est <= 0 {
		t.Errorf("estimate failed: %g %v", est, err)
	}
}

func TestFacadeRouting(t *testing.T) {
	p := RouteProblem{Cols: 30, Rows: 30, Agents: []RouteAgent{
		{ID: 0, Start: C(1, 1), Goal: C(25, 25)},
		{ID: 1, Start: C(25, 1), Goal: C(1, 25)},
	}}
	plan, err := PlanRoutes(p)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Solved {
		t.Fatal("facade routing failed")
	}
	if err := CheckPlan(p, plan); err != nil {
		t.Fatal(err)
	}
	if NewGreedyPlanner().Name() == NewPrioritizedPlanner().Name() {
		t.Error("planners should be distinct")
	}
}

func TestFacadeTechSelection(t *testing.T) {
	best, err := SelectNode(DefaultTechRequirements())
	if err != nil {
		t.Fatal(err)
	}
	if best.Node.VddIO < 5 {
		t.Errorf("paper's C1 violated: best node %s has VddIO %g",
			best.Node.Name, best.Node.VddIO)
	}
	if len(TechNodes()) < 6 || len(RankNodes(DefaultTechRequirements())) == 0 {
		t.Error("node database incomplete")
	}
}

func TestFacadeFabAndFlows(t *testing.T) {
	if len(FabCatalog()) != 4 {
		t.Errorf("catalog size = %d", len(FabCatalog()))
	}
	dfr := DryFilmResist()
	if dfr.TurnaroundDays > 3 {
		t.Error("dry-film turnaround should honour the paper's 2-3 days")
	}
	bt, err := CompareFlows(BuildAndTestFlow, FluidicProject(), dfr, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := CompareFlows(SimulateFirstFlow, FluidicProject(), dfr, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Days.Median() >= sf.Days.Median() {
		t.Error("fluidic regime should favour build-and-test")
	}
}

func TestFacadePlannersAndPostOptimizers(t *testing.T) {
	p := RouteProblem{Cols: 40, Rows: 40, Agents: []RouteAgent{
		{ID: 0, Start: C(1, 1), Goal: C(35, 35)},
		{ID: 1, Start: C(35, 1), Goal: C(1, 35)},
		{ID: 2, Start: C(1, 35), Goal: C(35, 1)},
	}}
	for _, pl := range []Planner{NewGreedyPlanner(), NewWindowedPlanner(), NewPrioritizedPlanner()} {
		plan, err := pl.Plan(p)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		if !plan.Solved {
			if pl.Name() == "greedy" {
				continue // the baseline may livelock
			}
			t.Fatalf("%s failed a 3-agent crossing", pl.Name())
		}
		if err := CheckPlan(p, plan); err != nil {
			t.Fatalf("%s: %v", pl.Name(), err)
		}
		refined, _ := RefinePlan(p, plan, 2)
		if err := CheckPlan(p, refined); err != nil {
			t.Fatalf("%s refined: %v", pl.Name(), err)
		}
		compacted, _ := CompactPlan(p, refined)
		if err := CheckPlan(p, compacted); err != nil {
			t.Fatalf("%s compacted: %v", pl.Name(), err)
		}
	}
}

func TestFacadeProbeAndWashAssay(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Array.Cols, cfg.Array.Rows = 40, 40
	cfg.SensorParallelism = 40
	cfg.Seed = 17
	rep, err := RunAssay(AssayProgram{
		Name: "facade-isolation",
		Ops: []AssayOp{
			OpLoad{Kind: ViableCell(), Count: 5},
			OpLoad{Kind: NonViableCell(), Count: 5},
			OpSettle{},
			OpCapture{},
			OpProbe{Frequency: 1e4},
			OpWash{Volumes: 4},
		},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ProbeKept == 0 || rep.ProbeEjected == 0 || rep.Washed == 0 {
		t.Errorf("isolation pipeline incomplete: %+v", rep)
	}
}

func TestFacadeCagePhysics(t *testing.T) {
	m, err := NewCageModel(DefaultCageSpec())
	if err != nil {
		t.Fatal(err)
	}
	v := m.MaxDragSpeed(10*units.Micron, -0.4, units.WaterViscosity)
	if v <= 0 {
		t.Error("cage model should predict a positive drag speed")
	}
}

func TestFacadeAssayService(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Array.Cols, cfg.Array.Rows = 40, 40
	cfg.SensorParallelism = 40
	cfg.Parallelism = 1

	svc, err := NewAssayService(ServiceConfig{Shards: 2, Chip: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	pr := AssayProgram{
		Name: "facade-service",
		Ops: []AssayOp{
			OpLoad{Kind: ViableCell(), Count: 6},
			OpSettle{},
			OpCapture{},
			OpScan{Averaging: 8},
			OpReleaseAll{},
		},
	}
	id, err := svc.Submit(pr, 9)
	if err != nil {
		t.Fatal(err)
	}
	job, err := svc.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if job.Report == nil || job.Report.Trapped == 0 {
		t.Fatalf("implausible job: %+v", job)
	}
	// The service result must match a serial replay with the same seed.
	serial := cfg
	serial.Seed = 9
	want, err := RunAssay(pr, serial)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(job.Report, want) {
		t.Error("service report differs from serial replay")
	}
	if st := svc.Stats(); st.Done != 1 {
		t.Errorf("stats.Done = %d, want 1", st.Done)
	}
}
