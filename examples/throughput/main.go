// Throughput: how many individually-manipulated cells per hour does the
// platform deliver, and what limits it? The example sweeps array sizes,
// builds the canonical capture-scan-gather assay for each, and breaks
// the cycle time into its physical components — making the paper's C2
// concrete: everything electronic is free; the cells' own drag-limited
// motion is the budget.
//
//	go run ./examples/throughput
package main

import (
	"fmt"
	"log"

	"biochip"
	"biochip/internal/cage"
	"biochip/internal/units"
)

func main() {
	fmt.Println("platform throughput vs array size (capture-scan-gather assay)")
	fmt.Println()
	fmt.Printf("%-10s %-8s %-10s %-12s %-12s %-10s\n",
		"array", "cages", "cells/run", "est. cycle", "cells/hour", "bottleneck")
	for _, side := range []int{64, 128, 192, 320} {
		cfg := biochip.DefaultConfig()
		cfg.Array.Cols, cfg.Array.Rows = side, side
		cfg.SensorParallelism = side
		capacity := cage.MaxCages(side, side, cage.MinSeparation)
		// Load to 20% of capacity: dense enough to matter, sparse
		// enough to route.
		cells := capacity / 5

		program := biochip.AssayProgram{
			Name: "throughput-probe",
			Ops: []biochip.AssayOp{
				biochip.OpLoad{Kind: biochip.ViableCell(), Count: cells},
				biochip.OpSettle{},
				biochip.OpCapture{},
				biochip.OpScan{Averaging: 16},
				biochip.OpGather{Anchor: biochip.C(1, 1)},
			},
		}
		est, err := biochip.EstimateAssayDuration(program, cfg)
		if err != nil {
			log.Fatal(err)
		}
		perHour := float64(cells) / est * units.Hour
		fmt.Printf("%-10s %-8d %-10d %-12s %-12.0f %s\n",
			fmt.Sprintf("%dx%d", side, side), capacity, cells,
			units.FormatDuration(est), perHour, "cage transport")
	}

	fmt.Println()
	fmt.Println("where one assay cycle goes (320x320, worst-case estimator):")
	cfg := biochip.DefaultConfig()
	sim, err := biochip.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	settle := sim.Chamber().Height / (5 * units.Micron)
	step := sim.StepTime()
	scan, _ := cfg.Sensor.ArrayScanTime(cfg.Array.Cols, cfg.Array.Rows, 16, cfg.SensorParallelism)
	transport := float64(cfg.Array.Cols+cfg.Array.Rows) * step
	fmt.Printf("  settle (gravity)      %10s\n", units.FormatDuration(settle))
	fmt.Printf("  transport (worst)     %10s  (%s per 20 µm step)\n",
		units.FormatDuration(transport), units.FormatDuration(step))
	fmt.Printf("  full-array scan 16x   %10s\n", units.FormatDuration(scan))
	fmt.Printf("  frame programming     %10s per step — negligible (C2)\n",
		units.FormatDuration(cfg.Array.FrameProgramTime()))
	fmt.Println()
	fmt.Println("the electronics never shows up in the budget: mass transfer rules, as §2 argues")
}
