// Cell sorting: the viability-sorting scenario the platform was built
// for. Viable and non-viable cells differ in membrane integrity, which
// shifts their Clausius-Mossotti spectrum; the example finds the
// frequency window with the best contrast, then runs a capture-and-scan
// assay on a mixed population and reports detection quality.
//
//	go run ./examples/cellsorting
package main

import (
	"fmt"
	"log"

	"biochip"
	"biochip/internal/dep"
	"biochip/internal/units"
)

func main() {
	medium := dep.LowConductivityBuffer
	viable := biochip.ViableCell()
	dead := biochip.NonViableCell()

	// Sweep frequency for the best CM contrast between the populations.
	fmt.Println("CM-factor spectrum (viable vs non-viable):")
	bestF, bestContrast := 0.0, 0.0
	for _, f := range []float64{1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7} {
		cv := real(dep.CMFactorShelled(viable.Dielectric, medium, f))
		cn := real(dep.CMFactorShelled(dead.Dielectric, medium, f))
		contrast := cv - cn
		if contrast < 0 {
			contrast = -contrast
		}
		marker := ""
		if contrast > bestContrast {
			bestF, bestContrast = f, contrast
			marker = "  <- best so far"
		}
		fmt.Printf("  %-8s viable %+.3f  non-viable %+.3f  contrast %.3f%s\n",
			units.Format(f, "Hz"), cv, cn, contrast, marker)
	}
	fmt.Printf("operating point: %s (contrast %.3f)\n\n",
		units.Format(bestF, "Hz"), bestContrast)

	// Run a mixed-population capture-and-scan assay at that frequency.
	cfg := biochip.DefaultConfig()
	cfg.Array.Cols, cfg.Array.Rows = 96, 96
	cfg.SensorParallelism = 96
	cfg.Env.Frequency = bestF
	cfg.Seed = 7

	sim, err := biochip.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Load(&viable, 60); err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Load(&dead, 20); err != nil {
		log.Fatal(err)
	}
	sim.Settle(sim.Chamber().Height / (5 * units.Micron))
	cages, trapped, err := sim.CaptureAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mixed sample: 60 viable + 20 non-viable; %d trapped in %d cages\n",
		trapped, cages)

	scan, err := sim.Scan(32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scan: %d sites read in %s, %d detection errors\n",
		len(scan.Detections), units.FormatDuration(scan.ScanTime), scan.Errors)

	// Count trapped cells per kind via the particle table (ground truth
	// a real chip would get from DEP-response measurements at two
	// frequencies).
	nv, nn := 0, 0
	for _, d := range scan.Detections {
		if !d.Occupied {
			continue
		}
		p, ok := sim.Particle(d.ID)
		if !ok {
			continue
		}
		if p.Kind.Viable {
			nv++
		} else {
			nn++
		}
	}
	fmt.Printf("trapped population: %d viable, %d non-viable\n", nv, nn)
	fmt.Printf("total assay time: %s\n", units.FormatDuration(sim.Clock()))
}
