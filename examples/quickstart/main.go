// Quickstart: bring up a small platform, trap one cell in a DEP cage and
// drag it across the chip — the paper's core manipulation primitive.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"biochip"
	"biochip/internal/units"
)

func main() {
	// A 64×64 corner of the paper-scale platform is plenty for one cell.
	cfg := biochip.DefaultConfig()
	cfg.Array.Cols, cfg.Array.Rows = 64, 64
	cfg.SensorParallelism = 64
	cfg.Seed = 42

	sim, err := biochip.NewSimulator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %d electrodes at %s pitch, %s chamber\n",
		cfg.Array.NumElectrodes(), units.Format(cfg.Array.Pitch, "m"),
		units.Format(sim.Chamber().Height, "m"))

	// Load a single cell, let it settle to the surface, capture it.
	kind := biochip.ViableCell()
	ids, err := sim.Load(&kind, 1)
	if err != nil {
		log.Fatal(err)
	}
	sim.Settle(sim.Chamber().Height / (5 * units.Micron))
	cages, trapped, err := sim.CaptureAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capture: %d cage(s), %d cell(s) trapped\n", cages, trapped)

	id := ids[0]
	start, _ := sim.Layout().Position(id)
	goal := biochip.C(60, 60)
	fmt.Printf("routing cell %d: %v -> %v\n", id, start, goal)

	// Plan and execute the move with the production router.
	plan, err := biochip.PlanRoutes(biochip.RouteProblem{
		Cols: cfg.Array.Cols, Rows: cfg.Array.Rows,
		Agents: []biochip.RouteAgent{{ID: id, Start: start, Goal: goal}},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.ExecutePlan(plan); err != nil {
		log.Fatal(err)
	}
	end, _ := sim.Layout().Position(id)
	p, _ := sim.Particle(id)
	fmt.Printf("done: cell at cage %v, levitating %s above the surface\n",
		end, units.Format(p.Pos.Z, "m"))
	fmt.Printf("assay time: %s (%d cage steps at %s per step)\n",
		units.FormatDuration(sim.Clock()), plan.Makespan,
		units.FormatDuration(sim.StepTime()))
}
