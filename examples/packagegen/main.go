// Package generation: the Fig. 3 workflow as a tool. Synthesize the
// fluidic package (chamber + feed channels + lid ports) for the
// paper-scale die, check the layout against each fabrication process's
// design rules, and print the hydraulic operating envelope — everything
// a designer needs before committing a two-three-day dry-film run.
//
//	go run ./examples/packagegen
package main

import (
	"fmt"
	"log"

	"biochip/internal/fab"
	"biochip/internal/units"
)

func main() {
	spec := fab.DefaultPackageSpec()
	pkg, err := fab.GeneratePackage(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized package for %s × %s die:\n",
		units.Format(spec.DieWidth, "m"), units.Format(spec.DieHeight, "m"))
	for _, f := range pkg.Mask.Features {
		fmt.Printf("  layer %d  %-15s width %s\n",
			f.Layer, f.Name, units.Format(f.Width, "m"))
	}
	fmt.Printf("chamber volume: %s (the paper's ~4 µl drop)\n\n",
		units.Format(pkg.ChamberVolume()/units.Liter, "l"))

	fmt.Println("design-rule check against each process:")
	for _, proc := range fab.Catalog() {
		v := pkg.Mask.DRC(proc)
		status := "CLEAN"
		if len(v) > 0 {
			status = fmt.Sprintf("%d violations (%s)", len(v), v[0].Rule)
		}
		fmt.Printf("  %-20s %s\n", proc.Name, status)
	}

	fmt.Println("\nhydraulic envelope (water):")
	for _, mbar := range []float64{1, 2, 5, 10} {
		pa := mbar * 100
		ft, err := pkg.FillTime(pa, units.WaterViscosity)
		if err != nil {
			log.Fatal(err)
		}
		tau, err := pkg.LoadingShearStress(pa, units.WaterViscosity)
		if err != nil {
			log.Fatal(err)
		}
		safe := "cell-safe"
		if tau > 10 {
			safe = "TOO HARSH for cells"
		}
		fmt.Printf("  %4.0f mbar: fill %-8s shear %5.2f Pa  (%s)\n",
			mbar, units.FormatDuration(ft), tau, safe)
	}

	dfr := fab.DryFilmResist()
	fmt.Printf("\nfabrication: %s — masks %s, %.1f days to device\n",
		dfr.Name, units.FormatMoney(dfr.MaskCost*float64(dfr.MaskLayers)), dfr.TurnaroundDays)
	fmt.Println("(\"it is often faster to build and test a prototype than to simulate it\")")
}
