// Technology selection: the paper's first consideration, as a design
// tool. Given the biology (cell size fixes the electrode pitch) and the
// physics (DEP force ∝ V²), which CMOS node should a new biochip use?
// The example sweeps the node database for the paper's platform and for
// a hypothetical sub-micron bead chip, showing how the answer flips.
//
//	go run ./examples/techselect
package main

import (
	"fmt"
	"log"

	"biochip"
	"biochip/internal/units"
)

func main() {
	// Case 1: the paper's platform — 20 µm pitch for 20-30 µm cells.
	req := biochip.DefaultTechRequirements()
	fmt.Printf("case 1: cell chip, pitch %s, ≥%.1f V actuation\n",
		units.Format(req.ElectrodePitch, "m"), req.MinActuationVoltage)
	ranked := biochip.RankNodes(req)
	for i, ev := range ranked {
		fmt.Printf("  %d. %-7s Vdd=%.1fV  relF=%.2f  proto=%s  score=%.2f\n",
			i+1, ev.Node.Name, ev.ActuationVoltage, ev.RelDEPForce,
			units.FormatMoney(ev.PrototypeCost), ev.Score)
	}
	best, err := biochip.SelectNode(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  -> choose %s (%d): \"older generation technologies may best fit your purpose\"\n\n",
		best.Node.Name, best.Node.Year)

	// Case 2: a 4 µm-pitch bead chip — the argument inverts.
	req2 := biochip.DefaultTechRequirements()
	req2.ElectrodePitch = 4 * units.Micron
	req2.PixelTransistors = 10
	req2.MinActuationVoltage = 2.0
	fmt.Printf("case 2: sub-micron bead chip, pitch %s, ≥%.1f V\n",
		units.Format(req2.ElectrodePitch, "m"), req2.MinActuationVoltage)
	best2, err := biochip.SelectNode(req2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  -> choose %s (%d): fine pitch forces a modern node\n",
		best2.Node.Name, best2.Node.Year)
	fmt.Println("\nthe rule is not \"old is better\" — it is \"let the biology set the pitch,")
	fmt.Println("then buy volts and euros, not nanometres\"")
}
