// Rare-cell isolation: find a handful of target cells in a larger
// background population, then gather all trapped cells into a packed
// recovery block in the chip corner — the "individual cell manipulation"
// workload the paper's intro motivates, expressed as an assay program.
//
//	go run ./examples/rarecell
package main

import (
	"fmt"
	"log"

	"biochip"
	"biochip/internal/units"
)

func main() {
	cfg := biochip.DefaultConfig()
	cfg.Array.Cols, cfg.Array.Rows = 96, 96
	cfg.SensorParallelism = 96
	cfg.Seed = 2026

	target := biochip.ViableCell()
	target.Name = "target-cell"
	background := biochip.NonViableCell()
	background.Name = "background"

	program := biochip.AssayProgram{
		Name: "rare-cell-isolation",
		Ops: []biochip.AssayOp{
			biochip.OpLoad{Kind: target, Count: 12},
			biochip.OpLoad{Kind: background, Count: 48},
			biochip.OpSettle{},                        // sediment to the cage plane
			biochip.OpCapture{},                       // one cage per particle
			biochip.OpProbe{Frequency: 1e4},           // 10 kHz: targets stay caged, background ejected
			biochip.OpWash{Volumes: 5},                // flush the ejected background out
			biochip.OpScan{Averaging: 32},             // verify occupancy
			biochip.OpGather{Anchor: biochip.C(1, 1)}, // pack survivors into the recovery corner
			biochip.OpScan{Averaging: 32},             // verify after transport
		},
	}

	fmt.Printf("assay %q:\n", program.Name)
	for i, op := range program.Ops {
		fmt.Printf("  %d. %s\n", i+1, op.Describe())
	}

	est, err := biochip.EstimateAssayDuration(program, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstatic estimate: %s\n", units.FormatDuration(est))

	rep, err := biochip.RunAssay(program, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed in   : %s (simulated assay time)\n", units.FormatDuration(rep.Duration))
	fmt.Printf("captured      : %d of 60 particles\n", rep.Trapped)
	fmt.Printf("probe         : %d targets kept, %d background ejected\n", rep.ProbeKept, rep.ProbeEjected)
	fmt.Printf("wash          : %d background particles flushed out\n", rep.Washed)
	fmt.Printf("routing steps : %d synchronous cage steps\n", rep.Steps)
	fmt.Printf("scan quality  : %d errors over %d site reads\n", rep.ScanErrors, rep.ScanSites)

	fmt.Println("\nevent log:")
	for _, e := range rep.Events {
		fmt.Println("  ", e)
	}
}
