// Design-flow choice: the paper's Figs 1 and 2 as a decision tool. For a
// fluidic packaging design with poor models, is it faster to simulate
// until clean (Fig. 1) or to fabricate and test in the loop (Fig. 2)?
// The example runs the Monte-Carlo comparison on two fabrication
// processes and prints the regime map.
//
//	go run ./examples/flowdesign
package main

import (
	"fmt"
	"log"

	"biochip"
)

func main() {
	project := biochip.FluidicProject()
	flows := []biochip.FlowKind{
		biochip.SimulateFirstFlow,
		biochip.BuildAndTestFlow,
		biochip.BuildAndTestInsightFlow,
	}

	for _, proc := range []biochip.FabProcess{
		biochip.DryFilmResist(),
		// The slow comparison point: glass wet etching.
		mustProcess("glass-wet-etch"),
	} {
		fmt.Printf("process: %s (%.1f-day turnaround)\n", proc.Name, proc.TurnaroundDays)
		for _, f := range flows {
			res, err := biochip.CompareFlows(f, project, proc, 500, 1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-40s median %5.1f days  p90 %5.1f  builds %.2f\n",
				f.String(), res.Days.Median(), res.Days.Quantile(0.9), res.Fabs.Mean())
		}
		fmt.Println()
	}
	fmt.Println("with 2-3 day dry-film iterations and φ≈0.45 models, build-and-test wins —")
	fmt.Println("\"it is often faster to build and test a prototype than to simulate it\" (§3)")
}

func mustProcess(name string) biochip.FabProcess {
	for _, p := range biochip.FabCatalog() {
		if p.Name == name {
			return p
		}
	}
	log.Fatalf("unknown process %s", name)
	return biochip.FabProcess{}
}
