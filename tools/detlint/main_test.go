package main

import (
	"testing"

	"biochip/tools/detlint/internal/analysistest"
)

// TestModuleIsClean is the meta-test: the real module must pass its own
// determinism linter. Any finding here means either a regression in
// internal//cmd code or an analyzer change that needs a fixture update.
func TestModuleIsClean(t *testing.T) {
	root := analysistest.ModuleDir(t)
	findings, err := run(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Rule, f.Message)
	}
}
