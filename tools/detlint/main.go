// Command detlint statically enforces the determinism contract
// (docs/determinism.md): fixed seed → bit-identical reports and event
// streams across parallelism, sharding, stealing and restarts. It is a
// multichecker of five analyzers run over the module's shipped code
// (test files are exempt):
//
//	walltime    no time.Now/Since/Until in determinism-scoped packages
//	globalrand  no math/rand; randomness is seed- and index-keyed via internal/rng
//	maporder    no order-sensitive bodies under range-over-map
//	sinkpurity  event payloads carry only seed-deterministic state
//	detcompare  no ==/map keys over float-bearing structs (NaN/±0 hazards)
//
// The one escape hatch is a justified pragma on (or directly above) the
// offending line:
//
//	//detlint:allow walltime — Wall stamp, excluded from the contract
//
// CI runs detlint alongside gofmt/vet/doclint:
//
//	go run ./tools/detlint ./...
//
// The -json flag switches diagnostics to a machine-readable array of
// {file, line, col, rule, message, doc} objects. Exit status is 0 when
// clean, 1 on findings, 2 on load errors. docs/cli.md documents both
// linters.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"biochip/tools/detlint/internal/checks"
	"biochip/tools/detlint/internal/load"
)

// finding is the JSON wire form of one diagnostic.
type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Doc     string `json:"doc"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: detlint [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range checks.All {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n              %s\n", a.Name, a.Doc, a.URL)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := run(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Rule, f.Message)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// run loads the packages matched by patterns and applies the full
// analyzer suite, returning pragma-filtered findings sorted by
// position.
func run(dir string, patterns []string) ([]finding, error) {
	pkgs, err := load.Module(dir, patterns)
	if err != nil {
		return nil, err
	}
	cwd, _ := os.Getwd()
	var findings []finding
	for _, pkg := range pkgs {
		for _, d := range checks.LintPackage(pkg, checks.All) {
			pos := d.Position(pkg.Fset)
			file := pos.Filename
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, file); err == nil {
					file = rel
				}
			}
			findings = append(findings, finding{
				File: file, Line: pos.Line, Col: pos.Column,
				Rule: d.Rule, Message: d.Message, Doc: d.Doc,
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return findings, nil
}
