package checks

import (
	"biochip/tools/detlint/internal/allow"
	"biochip/tools/detlint/internal/analysis"
	"biochip/tools/detlint/internal/load"
)

// LintPackage applies the given analyzers to one loaded package and
// returns the diagnostics that survive //detlint:allow suppression,
// plus the diagnostics for malformed pragmas themselves. The detlint
// command runs it with the full suite (All); the analysistest harness
// runs it one analyzer at a time.
func LintPackage(pkg *load.Package, analyzers []*analysis.Analyzer) []analysis.Diagnostic {
	ix, diags := allow.Build(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			if ix.Allowed(d.Position(pkg.Fset), d.Rule) {
				return
			}
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			diags = append(diags, analysis.Diagnostic{
				Pos: pkg.Files[0].Pos(), Rule: a.Name, Message: "analyzer error: " + err.Error(), Doc: a.URL,
			})
		}
	}
	return diags
}
