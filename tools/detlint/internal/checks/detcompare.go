package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"biochip/tools/detlint/internal/analysis"
)

// Detcompare forbids the two float-equality hazards that would poison a
// content-addressed cache: `==`/`!=` between float-bearing struct or
// array values (NaN != NaN, and -0 == +0 while their bit patterns
// differ — so equal-looking values hash differently and vice versa),
// and map keys whose hashing touches a float for the same reason.
// Compare such values field by field with an explicit policy, or key
// maps on a canonical integer form (e.g. math.Float64bits after
// normalizing -0 and NaN).
var Detcompare = &analysis.Analyzer{
	Name: "detcompare",
	Doc: "forbid ==/!= on float-bearing structs/arrays and float-bearing map keys " +
		"in determinism-scoped packages; NaN and ±0 break bit-identity and canonical hashing",
	URL: "docs/determinism.md#detcompare",
	Run: runDetcompare,
}

func runDetcompare(pass *analysis.Pass) error {
	if !compareScoped(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				t := pass.TypesInfo.TypeOf(n.X)
				if t == nil || !isStructOrArray(t) || !floatBearing(t) {
					return true
				}
				pass.Reportf(n.OpPos, n.Op.String()+" compares float-bearing values of type "+t.String()+
					": NaN breaks reflexivity and ±0 collapses distinct bit patterns, so equality is not "+
					"bit-identity; compare fields with an explicit policy ("+pass.Analyzer.URL+")")
			case *ast.MapType:
				t := pass.TypesInfo.TypeOf(n.Key)
				if t == nil || !floatBearing(t) {
					return true
				}
				pass.Reportf(n.Key.Pos(), "map keyed on float-bearing type "+t.String()+": NaN keys are "+
					"unretrievable and ±0 alias, so key identity is not bit-identity; key on a canonical "+
					"integer form instead ("+pass.Analyzer.URL+")")
			}
			return true
		})
	}
	return nil
}

// isStructOrArray reports whether t's underlying type is a struct or
// array — the composite comparisons detcompare polices. Bare float
// comparisons are ordinary numeric code and stay legal.
func isStructOrArray(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Struct, *types.Array:
		return true
	}
	return false
}
