// Package checks holds the detlint analyzers — the static rules of the
// determinism contract (docs/determinism.md): walltime, globalrand,
// maporder, sinkpurity and detcompare. Every analyzer scopes itself by
// import path, so new packages under biochip/internal join the
// contract automatically, and the few sanctioned exclusions (the
// experiments package times wall-clock speedups by design) are listed
// here rather than scattered through the checkers.
package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"biochip/tools/detlint/internal/analysis"
)

// All is the detlint suite in diagnostic order.
var All = []*analysis.Analyzer{Walltime, Globalrand, Maporder, Sinkpurity, Obspurity, Detcompare}

const (
	internalPrefix = "biochip/internal/"
	cmdPrefix      = "biochip/cmd/"
	streamPath     = "biochip/internal/stream"
	rngPath        = "biochip/internal/rng"
	parallelPath   = "biochip/internal/parallel"
	obsPath        = "biochip/internal/obs"
	assayPath      = "biochip/internal/assay"
	cachePath      = "biochip/internal/cache"
)

// internalPkg reports whether path is a determinism-scoped library
// package.
func internalPkg(path string) bool { return strings.HasPrefix(path, internalPrefix) }

// cmdPkg reports whether path is a command of this module.
func cmdPkg(path string) bool { return strings.HasPrefix(path, cmdPrefix) }

// firstSegment returns the package name directly under internal/.
func firstSegment(path string) string {
	rest := strings.TrimPrefix(path, internalPrefix)
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		return rest[:i]
	}
	return rest
}

// wallClockScoped: all internal packages except experiments, whose
// entire purpose is measuring wall-clock speedups. Commands print
// timings for humans and are likewise out of scope.
func wallClockScoped(path string) bool {
	return internalPkg(path) && firstSegment(path) != "experiments"
}

// randScoped / mapOrderScoped / compareScoped: every internal package
// and every command — a stray rand draw or unordered iteration anywhere
// in shipped code can leak into a report or an event stream.
func randScoped(path string) bool     { return internalPkg(path) || cmdPkg(path) }
func mapOrderScoped(path string) bool { return internalPkg(path) || cmdPkg(path) }
func compareScoped(path string) bool  { return internalPkg(path) || cmdPkg(path) }

// sinkScoped: packages that can construct event payloads.
func sinkScoped(path string) bool { return internalPkg(path) }

// obsScoped: every internal package except internal/obs itself, whose
// whole content is obs-typed by definition and which constructs no
// payloads, reports or cache keys.
func obsScoped(path string) bool { return internalPkg(path) && firstSegment(path) != "obs" }

// used resolves the object an identifier or selector refers to.
func used(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// calleeObj resolves the object a call invokes (function, method or
// builtin), or nil for indirect calls through function values.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	return used(info, ast.Unparen(call.Fun))
}

// fromPkg reports whether obj is declared in the package with the given
// import path.
func fromPkg(obj types.Object, path string) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// isPkgFunc reports whether obj is one of the named package-level
// declarations of the package at path.
func isPkgFunc(obj types.Object, path string, names ...string) bool {
	if !fromPkg(obj, path) {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// namedFrom reports whether t is (a pointer to) the named type
// pkg.name.
func namedFrom(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// typeName returns the declared name of t (through one pointer), or "".
func typeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// floatBearing reports whether equality or map-key hashing of t touches
// a floating-point value: t is (or is a named/struct/array wrapper
// around) a float or complex. Pointers, interfaces and the other
// reference kinds compare by identity and are not float-bearing.
func floatBearing(t types.Type) bool {
	return floatBearingSeen(t, make(map[types.Type]bool))
}

func floatBearingSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&(types.IsFloat|types.IsComplex) != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if floatBearingSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return floatBearingSeen(u.Elem(), seen)
	}
	return false
}

// baseIdent unwraps selector, index and paren chains to the root
// identifier, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether the object e's root identifier
// resolves to was declared outside the [lo, hi] node span.
func declaredOutside(info *types.Info, e ast.Expr, lo, hi token.Pos) bool {
	id := baseIdent(e)
	if id == nil {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	return obj.Pos() < lo || obj.Pos() > hi
}

// mentions reports whether the subtree references obj.
func mentions(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
