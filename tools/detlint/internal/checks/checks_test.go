package checks_test

import (
	"testing"

	"biochip/tools/detlint/internal/analysistest"
	"biochip/tools/detlint/internal/checks"
)

// Each analyzer runs over its fixture package(s) under
// tools/detlint/testdata/src: positive cases carry // want
// expectations, negative and //detlint:allow cases must stay silent.

func TestWalltime(t *testing.T) {
	analysistest.Run(t, checks.Walltime, "biochip/internal/walltime")
}

// TestWalltimeExperimentsExempt pins the one sanctioned package-level
// exemption: the experiments harness times wall-clock speedups by
// design.
func TestWalltimeExperimentsExempt(t *testing.T) {
	analysistest.Run(t, checks.Walltime, "biochip/internal/experiments")
}

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, checks.Globalrand, "biochip/internal/globalrand")
}

// TestGlobalrandAllow pins pragma suppression of the import and the
// call site.
func TestGlobalrandAllow(t *testing.T) {
	analysistest.Run(t, checks.Globalrand, "biochip/internal/grallow")
}

func TestMaporder(t *testing.T) {
	analysistest.Run(t, checks.Maporder, "biochip/internal/maporder")
}

func TestSinkpurity(t *testing.T) {
	analysistest.Run(t, checks.Sinkpurity, "biochip/internal/sinkpurity")
}

func TestObspurity(t *testing.T) {
	analysistest.Run(t, checks.Obspurity, "biochip/internal/obspurity")
}

func TestDetcompare(t *testing.T) {
	analysistest.Run(t, checks.Detcompare, "biochip/internal/detcompare")
}
