package checks

import (
	"go/ast"

	"biochip/tools/detlint/internal/analysis"
)

// Walltime forbids wall-clock reads in determinism-scoped packages.
// Fixed seed → bit-identical reports and event streams is the repo's
// contract; the only sanctioned wall-clock value is a telemetry stamp
// explicitly excluded from the contract (stream.Event.Wall and the
// service uptime counters), and each such site must say so with
// //detlint:allow walltime — <reason>.
var Walltime = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbid time.Now/Since/Until in determinism-scoped packages; " +
		"wall stamps excluded from the contract must be annotated",
	URL: "docs/determinism.md#walltime",
	Run: runWalltime,
}

func runWalltime(pass *analysis.Pass) error {
	if !wallClockScoped(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if isPkgFunc(pass.TypesInfo.Uses[sel.Sel], "time", "Now", "Since", "Until") {
				pass.Reportf(sel.Pos(), "time."+sel.Sel.Name+" reads the wall clock in determinism-scoped package "+
					pass.Pkg.Path()+"; seed-fixed runs must be bit-identical, so move the timing out of scope or, "+
					"for a sanctioned telemetry stamp, annotate the site with //detlint:allow walltime — <reason> "+
					"("+pass.Analyzer.URL+")")
			}
			return true
		})
	}
	return nil
}
