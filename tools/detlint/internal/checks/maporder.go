package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"biochip/tools/detlint/internal/analysis"
)

// Maporder flags `range` over a map whose body is order-sensitive — the
// classic way nondeterminism leaks into a report, an event stream or a
// future cache key. Order-sensitive bodies are ones that:
//
//   - append to a slice declared outside the loop (unless that slice is
//     sorted later in the same function — the repo's collect-then-sort
//     discipline),
//   - write outer slice elements through a counter mutated in the body,
//   - accumulate floating-point values (+= is not associative in float
//     arithmetic, so the iteration order changes the bits),
//   - publish or encode inside the loop: stream sinks, Ring.Publish,
//     stream.Event-carrying calls, encoding/json, or fmt printing.
//
// The fix is always the same: snapshot the keys, sort them, range over
// the sorted slice.
var Maporder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map loops whose bodies append, accumulate floats, " +
		"or emit/encode — map iteration order is nondeterministic; sort the keys first",
	URL: "docs/determinism.md#maporder",
	Run: runMaporder,
}

func runMaporder(pass *analysis.Pass) error {
	if !mapOrderScoped(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		var stack []ast.Node
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if rs, ok := n.(*ast.RangeStmt); ok {
				if t := pass.TypesInfo.TypeOf(rs.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						checkMapRange(pass, rs, enclosingFuncBody(stack))
					}
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost function
// declaration or literal on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// rangeVarObjects resolves the key/value loop variables of the range
// statement. Writes indexed by them are per-entry and therefore
// order-independent (out[id] = append(out[id], v) touches a distinct
// element per iteration).
func rangeVarObjects(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// keyedByRangeVar reports whether e is an index expression whose index
// references a range variable of rs.
func keyedByRangeVar(info *types.Info, e ast.Expr, rangeVars map[types.Object]bool) bool {
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	keyed := false
	ast.Inspect(ix.Index, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && rangeVars[info.Uses[id]] {
			keyed = true
		}
		return !keyed
	})
	return keyed
}

// checkMapRange inspects one range-over-map body for order-sensitive
// operations.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt) {
	info := pass.TypesInfo
	mutated := mutatedObjects(info, rs.Body)
	rangeVars := rangeVarObjects(info, rs)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.RangeStmt:
			// A nested range gets its own top-level visit; don't
			// double-report its body here.
			return st == rs
		case *ast.AssignStmt:
			checkAssign(pass, rs, funcBody, st, mutated, rangeVars)
		case *ast.CallExpr:
			checkEmitCall(pass, st)
		}
		return true
	})
}

// mutatedObjects collects the objects assigned or inc/dec'd anywhere in
// the body — candidates for the outer-counter slice-write pattern.
func mutatedObjects(info *types.Info, body ast.Node) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(st.X)
		}
		return true
	})
	return out
}

// checkAssign flags the three order-sensitive assignment shapes inside
// a map range: append to an outer slice, float accumulation into an
// outer variable, and outer-slice writes through a body-mutated index.
func checkAssign(pass *analysis.Pass, rs *ast.RangeStmt, funcBody *ast.BlockStmt, st *ast.AssignStmt, mutated, rangeVars map[types.Object]bool) {
	info := pass.TypesInfo
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := st.Lhs[0]
		t := info.TypeOf(lhs)
		if t == nil {
			return
		}
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&(types.IsFloat|types.IsComplex) != 0 &&
			declaredOutside(info, lhs, rs.Pos(), rs.End()) {
			pass.Reportf(st.Pos(), "floating-point accumulation inside a map range: float addition is not "+
				"associative, so the nondeterministic iteration order changes the result bits; iterate sorted "+
				"keys instead ("+pass.Analyzer.URL+")")
		}
		return
	}
	for i, rhs := range st.Rhs {
		if len(st.Lhs) != len(st.Rhs) {
			break
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			continue
		}
		lhs := st.Lhs[i]
		if !declaredOutside(info, lhs, rs.Pos(), rs.End()) {
			continue
		}
		if keyedByRangeVar(info, lhs, rangeVars) {
			continue
		}
		if obj := info.Uses[baseIdent(lhs)]; obj != nil && sortedAfter(info, funcBody, obj, rs.End()) {
			continue
		}
		pass.Reportf(st.Pos(), "append inside a map range builds a slice in nondeterministic iteration order; "+
			"collect the keys, sort them, and range over the sorted slice (or sort the result before use) "+
			"("+pass.Analyzer.URL+")")
	}
	// Outer-slice writes through a counter the body mutates
	// (out[i] = v; i++) reconstruct append's order sensitivity.
	for _, lhs := range st.Lhs {
		ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		t := info.TypeOf(ix.X)
		if t == nil {
			continue
		}
		if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
			continue
		}
		if !declaredOutside(info, ix.X, rs.Pos(), rs.End()) {
			continue
		}
		if keyedByRangeVar(info, lhs, rangeVars) {
			continue
		}
		idxObj := info.Uses[baseIdent(ix.Index)]
		if idxObj != nil && mutated[idxObj] {
			pass.Reportf(st.Pos(), "outer slice written through a counter mutated inside a map range: element "+
				"positions follow the nondeterministic iteration order; iterate sorted keys instead "+
				"("+pass.Analyzer.URL+")")
		}
	}
}

// checkEmitCall flags calls inside a map range that externalize the
// iteration order: JSON encoding, fmt printing, and the stream surface
// (sinks, ring publishes, stream.Event arguments).
func checkEmitCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	obj := calleeObj(info, call)
	var what string
	switch {
	case fromPkg(obj, "encoding/json"):
		what = "encoding/json." + obj.Name()
	case fromPkg(obj, "fmt") && (strings.HasPrefix(obj.Name(), "Print") || strings.HasPrefix(obj.Name(), "Fprint")):
		what = "fmt." + obj.Name()
	case isSinkCall(info, call):
		what = "a stream sink"
	}
	if what == "" {
		for _, arg := range call.Args {
			if t := info.TypeOf(arg); t != nil && namedFrom(t, streamPath, "Event") {
				what = "a stream.Event-carrying call"
				break
			}
		}
	}
	if what != "" {
		pass.Reportf(call.Pos(), what+" invoked inside a map range externalizes the nondeterministic iteration "+
			"order; iterate sorted keys instead ("+pass.Analyzer.URL+")")
	}
}

// isSinkCall reports whether the call invokes a stream.Sink value or
// (*stream.Ring).Publish.
func isSinkCall(info *types.Info, call *ast.CallExpr) bool {
	if t := info.TypeOf(call.Fun); t != nil && namedFrom(t, streamPath, "Sink") {
		return true
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Publish" {
		if t := info.TypeOf(sel.X); t != nil && namedFrom(t, streamPath, "Ring") {
			return true
		}
	}
	return false
}

// sortedAfter reports whether a sort/slices call referencing obj
// appears in funcBody after pos — the collect-then-sort discipline.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	if funcBody == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		co := calleeObj(info, call)
		if co == nil || co.Pkg() == nil || (co.Pkg().Path() != "sort" && co.Pkg().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if mentions(info, arg, obj) {
				found = true
			}
		}
		return !found
	})
	return found
}
