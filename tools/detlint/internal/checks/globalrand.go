package checks

import (
	"go/ast"
	"go/types"
	"strconv"

	"biochip/tools/detlint/internal/analysis"
)

// Globalrand keeps every random draw on the seed-keyed path. It forbids
// importing math/rand or math/rand/v2 in determinism-scoped packages —
// all stochastic behaviour must flow through biochip/internal/rng so a
// run is a pure function of its seed — and it flags the sharper hazard
// of a captured *rng.Source used inside a parallel loop body, where
// draws become goroutine-keyed instead of index-keyed (use
// parallel.ForRNG or rng.Substream(seed, i) so any worker count yields
// bit-identical output).
var Globalrand = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbid math/rand and goroutine-keyed *rng.Source use in " +
		"determinism-scoped packages; randomness must be seed- and index-keyed via internal/rng",
	URL: "docs/determinism.md#globalrand",
	Run: runGlobalrand,
}

func runGlobalrand(pass *analysis.Pass) error {
	if !randScoped(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(spec.Pos(), "import "+path+" in determinism-scoped package "+pass.Pkg.Path()+
					": global or ad-hoc rand state is not seed-keyed; draw from biochip/internal/rng instead "+
					"(rng.Substream(seed, i) inside parallel loops) ("+pass.Analyzer.URL+")")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObj(pass.TypesInfo, call)
			switch {
			case isPkgFunc(obj, "math/rand", "New") || isPkgFunc(obj, "math/rand/v2", "New"):
				pass.Reportf(call.Pos(), "rand.New constructs a generator outside the seed-derivation tree; "+
					"use rng.New / rng.Substream so the draw order is a pure function of the experiment seed "+
					"("+pass.Analyzer.URL+")")
			case fromPkg(obj, "math/rand") || fromPkg(obj, "math/rand/v2"):
				if fn, ok := obj.(*types.Func); ok && fn.Signature().Recv() == nil {
					pass.Reportf(call.Pos(), "call to "+obj.Pkg().Path()+"."+obj.Name()+
						" keeps randomness outside the seed-derivation tree (top-level math/rand functions "+
						"draw from process-wide state); use biochip/internal/rng ("+pass.Analyzer.URL+")")
				}
			}
			checkCapturedSource(pass, call)
			return true
		})
	}
	return nil
}

// checkCapturedSource flags method calls on a *rng.Source that the body
// of a parallel.For / parallel.ForChunks loop captured from its
// enclosing scope: the per-iteration draw order then depends on which
// goroutine ran which index. Per-index lookups (streams[i]) and sources
// derived inside the body are fine.
func checkCapturedSource(pass *analysis.Pass, call *ast.CallExpr) {
	obj := calleeObj(pass.TypesInfo, call)
	if !isPkgFunc(obj, parallelPath, "For", "ForChunks") || len(call.Args) == 0 {
		return
	}
	fn, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		inner, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := inner.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		robj := pass.TypesInfo.Uses[recv]
		if robj == nil || !namedFrom(robj.Type(), rngPath, "Source") {
			return true
		}
		if robj.Pos() >= fn.Pos() && robj.Pos() <= fn.End() {
			return true
		}
		pass.Reportf(inner.Pos(), "*rng.Source "+recv.Name+" is captured by a parallel loop body, making its "+
			"draw order goroutine-keyed; derive an index-keyed stream with parallel.ForRNG or "+
			"rng.Substream(seed, i) ("+pass.Analyzer.URL+")")
		return true
	})
}
