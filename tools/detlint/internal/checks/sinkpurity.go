package checks

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"biochip/tools/detlint/internal/analysis"
)

// Sinkpurity guards the event payloads themselves: wherever a
// stream.Event (or one of its payload blocks) is constructed, assigned
// or handed to a sink, the values flowing in must be seed-deterministic.
// Flagged sources inside a payload context:
//
//   - wall-clock reads (only Event.Wall, stamped by the ring itself, is
//     sanctioned);
//   - the runtime package (goroutine counts, scheduler state);
//   - process identity (os.Getpid / Getenv / Environ / Hostname / Getwd);
//   - channel receives — select/receive ordering is scheduling, not
//     determinism;
//   - fleet identity: id-like fields of shard/worker/node-typed values.
//     Which die of a profile runs a job is a scheduling accident; the
//     profile name is part of the contract, the shard index is not.
var Sinkpurity = &analysis.Analyzer{
	Name: "sinkpurity",
	Doc: "event payload construction must not read wall clocks, runtime/process " +
		"state, channel ordering, or fleet/shard identity",
	URL: "docs/determinism.md#sinkpurity",
	Run: runSinkpurity,
}

// payloadTypes are the stream types whose construction is a payload
// context.
var payloadTypes = []string{"Event", "JobInfo", "OpInfo", "ScanChunk", "PlanInfo", "GapInfo", "Detection"}

func isPayloadType(t types.Type) bool {
	for _, name := range payloadTypes {
		if namedFrom(t, streamPath, name) {
			return true
		}
	}
	return false
}

func runSinkpurity(pass *analysis.Pass) error {
	if !sinkScoped(pass.Pkg.Path()) {
		return nil
	}
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if t := pass.TypesInfo.TypeOf(n); t != nil && isPayloadType(t) {
					for _, elt := range n.Elts {
						checkPayloadExpr(pass, elt, reported)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok || i >= len(n.Rhs) && len(n.Rhs) != 1 {
						continue
					}
					if t := pass.TypesInfo.TypeOf(sel.X); t != nil && isPayloadType(t) {
						checkPayloadExpr(pass, n.Rhs[min(i, len(n.Rhs)-1)], reported)
					}
				}
			case *ast.CallExpr:
				if isSinkCall(pass.TypesInfo, n) || hasEventParam(pass.TypesInfo, n) {
					for _, arg := range n.Args {
						checkPayloadExpr(pass, arg, reported)
					}
				}
			}
			return true
		})
	}
	return nil
}

// hasEventParam reports whether any argument of the call is a
// stream.Event — i.e. the call forwards a payload (Simulator.emit,
// executor helpers, ...).
func hasEventParam(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if t := info.TypeOf(arg); t != nil && namedFrom(t, streamPath, "Event") {
			return true
		}
	}
	return false
}

// idLikeField matches field names that carry placement identity.
var idLikeField = map[string]bool{"id": true, "ids": true, "idx": true, "index": true, "seq": true}

// checkPayloadExpr walks one expression that flows into an event
// payload and reports every nondeterministic source in it.
func checkPayloadExpr(pass *analysis.Pass, e ast.Expr, reported map[token.Pos]bool) {
	info := pass.TypesInfo
	report := func(pos token.Pos, msg string) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, msg+" ("+pass.Analyzer.URL+")")
		}
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.Pos(), "channel receive inside an event payload: receive/select ordering is "+
					"scheduling state, not seed-determined; compute the value before the emit site")
			}
		case *ast.SelectorExpr:
			obj := info.Uses[n.Sel]
			switch {
			case isPkgFunc(obj, "time", "Now", "Since", "Until"):
				report(n.Pos(), "wall clock flows into an event payload; the ring's Wall stamp is the one "+
					"sanctioned wall-time field — everything else must be simulated time")
			case fromPkg(obj, "runtime"):
				report(n.Pos(), "runtime."+n.Sel.Name+" in an event payload leaks goroutine/scheduler state, "+
					"which is not seed-determined")
			case isPkgFunc(obj, "os", "Getpid", "Getenv", "Environ", "Hostname", "Getwd"):
				report(n.Pos(), "os."+n.Sel.Name+" in an event payload leaks process identity, which is not "+
					"seed-determined")
			default:
				checkFleetIdentity(pass, n, report)
			}
		}
		return true
	})
}

// checkFleetIdentity flags id-like fields selected from shard/worker/
// node-typed values: which die executes a job is a scheduling accident
// and must not appear in the stream.
func checkFleetIdentity(pass *analysis.Pass, sel *ast.SelectorExpr, report func(token.Pos, string)) {
	recv := pass.TypesInfo.TypeOf(sel.X)
	tn := strings.ToLower(typeName(recv))
	if tn == "" || !(strings.Contains(tn, "shard") || strings.Contains(tn, "worker") || strings.Contains(tn, "node")) {
		return
	}
	field := strings.ToLower(sel.Sel.Name)
	if idLikeField[field] || strings.HasSuffix(field, "id") {
		report(sel.Pos(), "fleet identity "+typeName(recv)+"."+sel.Sel.Name+" flows into an event payload; "+
			"which shard/worker runs a job is a scheduling accident — payloads may carry the profile, never "+
			"the die")
	}
}
