package checks

import (
	"go/ast"
	"go/token"
	"go/types"

	"biochip/tools/detlint/internal/analysis"
)

// Obspurity keeps telemetry out-of-band: internal/obs exists under the
// same determinism carve-out as Event.Wall — its stamps, spans and
// metric values are wall-clock observations, so nothing sourced from it
// may flow into the deterministic artifacts. Guarded contexts:
//
//   - event payload construction (the same contexts sinkpurity walks:
//     payload composite literals, field assigns, sink/Publish calls and
//     Event-forwarding helpers);
//   - assay.Report construction and field assigns — the report is the
//     bit-identical contract artifact;
//   - cache key material: arguments to cache.KeyOf / cache.ConfigJSON.
//     A key that tasted telemetry would split identical jobs across
//     cache entries and break whole-assay memoization.
//
// Flagged sources: any reference to a declaration of internal/obs
// (obs.Now, obs.Since, obs method calls) and any value whose type is
// declared there (obs.Stamp, obs.Span, obs.TraceDoc, ...).
var Obspurity = &analysis.Analyzer{
	Name: "obspurity",
	Doc: "nothing from internal/obs may flow into assay reports, event payloads " +
		"or cache key material",
	URL: "docs/observability.md#obspurity",
	Run: runObspurity,
}

func runObspurity(pass *analysis.Pass) error {
	if !obsScoped(pass.Pkg.Path()) {
		return nil
	}
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				t := pass.TypesInfo.TypeOf(n)
				switch {
				case t != nil && isPayloadType(t):
					for _, elt := range n.Elts {
						checkObsExpr(pass, elt, "an event payload", reported)
					}
				case t != nil && namedFrom(t, assayPath, "Report"):
					for _, elt := range n.Elts {
						checkObsExpr(pass, elt, "an assay report", reported)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok || i >= len(n.Rhs) && len(n.Rhs) != 1 {
						continue
					}
					t := pass.TypesInfo.TypeOf(sel.X)
					if t == nil {
						continue
					}
					var ctx string
					switch {
					case isPayloadType(t):
						ctx = "an event payload"
					case namedFrom(t, assayPath, "Report"):
						ctx = "an assay report"
					default:
						continue
					}
					checkObsExpr(pass, n.Rhs[min(i, len(n.Rhs)-1)], ctx, reported)
				}
			case *ast.CallExpr:
				switch {
				case isPkgFunc(calleeObj(pass.TypesInfo, n), cachePath, "KeyOf", "ConfigJSON"):
					for _, arg := range n.Args {
						checkObsExpr(pass, arg, "cache key material", reported)
					}
				case isSinkCall(pass.TypesInfo, n) || hasEventParam(pass.TypesInfo, n):
					for _, arg := range n.Args {
						checkObsExpr(pass, arg, "an event payload", reported)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkObsExpr walks one expression flowing into a guarded context and
// reports every obs-sourced value in it.
func checkObsExpr(pass *analysis.Pass, e ast.Expr, ctx string, reported map[token.Pos]bool) {
	info := pass.TypesInfo
	report := func(pos token.Pos, msg string) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, msg+" ("+pass.Analyzer.URL+")")
		}
	}
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		// Fields and methods of obs types are covered by flagging the
		// receiver value itself — reporting them too would double up.
		if v, ok := obj.(*types.Var); ok && v.IsField() {
			return true
		}
		if f, ok := obj.(*types.Func); ok && f.Signature().Recv() != nil {
			return true
		}
		switch {
		case fromPkg(obj, obsPath):
			report(id.Pos(), "obs."+obj.Name()+" flows into "+ctx+"; telemetry is "+
				"out-of-band and must never reach reports, payloads or cache keys")
		case obsTyped(obj.Type()):
			report(id.Pos(), id.Name+" (obs."+obsTypeName(obj.Type())+") flows into "+ctx+
				"; telemetry is out-of-band and must never reach reports, payloads or cache keys")
		}
		return true
	})
}

// obsTyped reports whether t is (a pointer/slice/array of) a type
// declared in internal/obs.
func obsTyped(t types.Type) bool {
	switch u := t.(type) {
	case *types.Pointer:
		return obsTyped(u.Elem())
	case *types.Slice:
		return obsTyped(u.Elem())
	case *types.Array:
		return obsTyped(u.Elem())
	case *types.Named:
		obj := u.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == obsPath
	}
	return false
}

// obsTypeName unwraps to the obs-declared element type's name.
func obsTypeName(t types.Type) string {
	switch u := t.(type) {
	case *types.Pointer:
		return obsTypeName(u.Elem())
	case *types.Slice:
		return obsTypeName(u.Elem())
	case *types.Array:
		return obsTypeName(u.Elem())
	case *types.Named:
		return u.Obj().Name()
	}
	return ""
}
