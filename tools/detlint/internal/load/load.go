// Package load turns Go packages into type-checked syntax for the
// detlint analyzers without any dependency outside the standard
// library. Two loaders share one Package shape:
//
//   - Module loads packages of the enclosing module by shelling out to
//     `go list -export -json -deps`, which both enumerates the target
//     packages and hands back compiled export data for every
//     dependency; each target is then parsed and type-checked from
//     source with imports resolved through that export data. This is
//     the same division of labour the go command performs for `go vet`.
//
//   - Fixtures loads analysistest packages from a testdata/src tree:
//     imports that exist as directories under the tree are type-checked
//     from source (letting fixtures shadow real module packages with
//     small fakes), everything else resolves through toolchain export
//     data exactly like the module loader.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("biochip/internal/chip"); for fixture
	// packages it is the directory path relative to the testdata root.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the slice of `go list -json` output the loaders consume.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
}

// goList runs `go list` with the given arguments in dir and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// exportImporter resolves imports from a map of import path → compiled
// export-data file, as produced by `go list -export`.
type exportImporter struct {
	gc types.Importer
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{gc: importer.ForCompiler(fset, "gc", lookup)}
}

func (im *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return im.gc.Import(path)
}

// newInfo allocates the full set of type-checker fact maps.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// parseDir parses the named files of one directory.
func parseDir(fset *token.FileSet, dir string, files []string) ([]*ast.File, error) {
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	return parsed, nil
}

// check type-checks one package's parsed files.
func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := newInfo()
	cfg := types.Config{Importer: imp}
	pkg, err := cfg.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return pkg, info, nil
}

// Module loads the module packages matched by patterns (e.g. "./...")
// relative to dir, type-checked from source with dependencies resolved
// through toolchain export data. Test files are not loaded: the
// determinism contract governs shipped code, while tests are free to
// time and randomize their own scaffolding.
func Module(dir string, patterns []string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"list", "-json=ImportPath,Dir,GoFiles", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	deps, err := goList(dir, append([]string{"list", "-export", "-json=ImportPath,Export", "-deps", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, d := range deps {
		if d.Export != "" {
			exports[d.ImportPath] = d.Export
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files, err := parseDir(fset, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		tpkg, info, err := check(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{Path: t.ImportPath, Fset: fset, Files: files, Types: tpkg, Info: info})
	}
	return pkgs, nil
}

// fixtureImporter loads fixture packages from a testdata/src tree,
// falling back to toolchain export data for everything else.
type fixtureImporter struct {
	root    string
	fset    *token.FileSet
	exports *exportImporter
	memo    map[string]*Package
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	pkg, err := im.load(path)
	if err != nil {
		return nil, err
	}
	if pkg != nil {
		return pkg.Types, nil
	}
	return im.exports.Import(path)
}

// load returns the fixture package at path, or nil if no fixture
// directory shadows it.
func (im *fixtureImporter) load(path string) (*Package, error) {
	if p, ok := im.memo[path]; ok {
		return p, nil
	}
	dir := filepath.Join(im.root, filepath.FromSlash(path))
	st, err := os.Stat(dir)
	if err != nil || !st.IsDir() {
		return nil, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	files, err := parseDir(im.fset, dir, names)
	if err != nil {
		return nil, err
	}
	tpkg, info, err := check(im.fset, path, files, im)
	if err != nil {
		return nil, err
	}
	p := &Package{Path: path, Fset: im.fset, Files: files, Types: tpkg, Info: info}
	im.memo[path] = p
	return p, nil
}

// Fixtures loads the named fixture packages from root (a testdata/src
// tree). moduleDir anchors the `go list` runs that supply export data
// for standard-library imports.
func Fixtures(moduleDir, root string, paths []string) ([]*Package, error) {
	ext, err := externalImports(root)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	if len(ext) > 0 {
		deps, err := goList(moduleDir, append([]string{"list", "-export", "-json=ImportPath,Export", "-deps", "--"}, ext...)...)
		if err != nil {
			return nil, err
		}
		for _, d := range deps {
			if d.Export != "" {
				exports[d.ImportPath] = d.Export
			}
		}
	}
	fset := token.NewFileSet()
	im := &fixtureImporter{
		root:    root,
		fset:    fset,
		exports: newExportImporter(fset, exports),
		memo:    make(map[string]*Package),
	}
	var pkgs []*Package
	for _, path := range paths {
		p, err := im.load(path)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("fixture package %q not found under %s", path, root)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// externalImports scans every fixture file under root and returns the
// sorted set of imports that no fixture directory provides — the ones
// whose export data must come from the toolchain.
func externalImports(root string) ([]string, error) {
	ext := make(map[string]bool)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil || p == "unsafe" {
				continue
			}
			if st, err := os.Stat(filepath.Join(root, filepath.FromSlash(p))); err == nil && st.IsDir() {
				continue
			}
			ext[p] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(ext))
	for p := range ext {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}
