// Package analysistest runs one detlint analyzer over fixture packages
// and checks its diagnostics against // want expectations embedded in
// the fixtures — the same convention as
// golang.org/x/tools/go/analysis/analysistest, re-created on the
// standard library because the module vendors no third-party code.
//
// An expectation is a comment of the form
//
//	code() // want `regexp` `another regexp`
//
// with each pattern (backquoted or double-quoted) required to match the
// message of a distinct diagnostic reported on that line. Diagnostics
// without a matching expectation, and expectations without a matching
// diagnostic, fail the test. //detlint:allow suppression is applied
// exactly as in the real driver, so allow fixtures assert silence by
// carrying no want comments.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"biochip/tools/detlint/internal/analysis"
	"biochip/tools/detlint/internal/checks"
	"biochip/tools/detlint/internal/load"
)

// TestData returns the detlint fixture root (tools/detlint/testdata/src)
// relative to the calling test's package directory.
func TestData(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", "testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// ModuleDir locates the enclosing module root by walking up from the
// working directory to go.mod — the anchor for the `go list` runs that
// supply export data.
func ModuleDir(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("analysistest: no go.mod above working directory")
		}
		dir = parent
	}
}

// expectation is one want pattern at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// wantPattern extracts backquoted or double-quoted segments.
var wantPattern = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads the fixture packages, applies the analyzer (with
// //detlint:allow suppression, as the driver does) and diffs the
// diagnostics against the fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	pkgs, err := load.Fixtures(ModuleDir(t), TestData(t), pkgPaths)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	for _, pkg := range pkgs {
		expectations := collectWant(t, pkg)
		diags := checks.LintPackage(pkg, []*analysis.Analyzer{a})
		for _, d := range diags {
			pos := d.Position(pkg.Fset)
			if !claim(expectations, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", rel(pos.Filename), pos.Line, d.Rule, d.Message)
			}
		}
		for _, e := range expectations {
			if !e.used {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", rel(e.file), e.line, e.re.String())
			}
		}
	}
}

// rel shortens a fixture path for failure messages.
func rel(path string) string {
	if i := strings.Index(path, "testdata"+string(filepath.Separator)); i >= 0 {
		return path[i:]
	}
	return path
}

// claim marks the first unused expectation matching the diagnostic.
func claim(exps []*expectation, file string, line int, msg string) bool {
	for _, e := range exps {
		if !e.used && e.file == file && e.line == line && e.re.MatchString(msg) {
			e.used = true
			return true
		}
	}
	return false
}

// collectWant scans the package's comments for want expectations.
func collectWant(t *testing.T, pkg *load.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, found := strings.CutPrefix(c.Text, "// want ")
				if !found {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				for _, q := range wantPattern.FindAllString(text, -1) {
					pat := q
					if strings.HasPrefix(q, "`") {
						pat = strings.Trim(q, "`")
					} else if unq, err := strconv.Unquote(q); err == nil {
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", rel(pos.Filename), pos.Line, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
				if len(wantPattern.FindAllString(text, -1)) == 0 {
					t.Fatalf("%s:%d: want comment with no pattern", rel(pos.Filename), pos.Line)
				}
			}
		}
	}
	if out == nil {
		return nil
	}
	return out
}
