// Package analysis is detlint's in-tree miniature of the
// golang.org/x/tools/go/analysis API: an Analyzer bundles a named check
// with its Run function, a Pass hands the check one type-checked
// package, and diagnostics flow back through Pass.Report. The module
// vendors no third-party code, so this package re-creates exactly the
// slice of the upstream surface the detlint checkers need — if the
// x/tools dependency ever becomes available the checkers port over by
// swapping one import.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named determinism check.
type Analyzer struct {
	// Name is the rule identifier, as used by //detlint:allow pragmas
	// and diagnostic output (e.g. "walltime").
	Name string
	// Doc is the one-paragraph description shown by -help.
	Doc string
	// URL anchors the rule in the determinism contract document; every
	// diagnostic cites it (e.g. "docs/determinism.md#walltime").
	URL string
	// Run analyzes one package and reports findings via pass.Report.
	Run func(*Pass) error
}

// Pass is the interface between one Analyzer and one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver wraps it with
	// //detlint:allow suppression before the analyzer sees it.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, msg string) {
	p.Report(Diagnostic{Pos: pos, Rule: p.Analyzer.Name, Message: msg, Doc: p.Analyzer.URL})
}

// Diagnostic is one finding: a position, the violated rule and a
// message citing the contract document.
type Diagnostic struct {
	Pos     token.Pos
	Rule    string
	Message string
	// Doc is the docs/determinism.md anchor of the violated rule.
	Doc string
}

// Position resolves the diagnostic's file:line:col.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}
