package allow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"biochip/tools/detlint/internal/allow"
)

// build parses one source string and runs allow.Build on it.
func build(t *testing.T, src string) (*token.FileSet, *allow.Index, []string) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ix, diags := allow.Build(fset, []*ast.File{f})
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	return fset, ix, msgs
}

func pos(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line}
}

func TestAllowCoversOwnAndNextLine(t *testing.T) {
	_, ix, msgs := build(t, `package p

//detlint:allow walltime — sanctioned stamp
var x = 1
`)
	if len(msgs) != 0 {
		t.Fatalf("unexpected pragma diagnostics: %v", msgs)
	}
	if !ix.Allowed(pos("fix.go", 3), "walltime") {
		t.Error("pragma line itself not covered")
	}
	if !ix.Allowed(pos("fix.go", 4), "walltime") {
		t.Error("line below pragma not covered")
	}
	if ix.Allowed(pos("fix.go", 5), "walltime") {
		t.Error("pragma must not cover two lines below")
	}
	if ix.Allowed(pos("fix.go", 4), "maporder") {
		t.Error("pragma must not cover other rules")
	}
}

func TestAllowDoubleHyphenAndMultipleRules(t *testing.T) {
	_, ix, msgs := build(t, `package p

//detlint:allow walltime,sinkpurity -- both sanctioned here
var x = 1
`)
	if len(msgs) != 0 {
		t.Fatalf("unexpected pragma diagnostics: %v", msgs)
	}
	for _, rule := range []string{"walltime", "sinkpurity"} {
		if !ix.Allowed(pos("fix.go", 4), rule) {
			t.Errorf("rule %s not covered", rule)
		}
	}
}

func TestAllowWithoutReasonIsDiagnosed(t *testing.T) {
	_, ix, msgs := build(t, `package p

//detlint:allow walltime
var x = 1
`)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "without a reason") {
		t.Fatalf("want one missing-reason diagnostic, got %v", msgs)
	}
	if ix.Allowed(pos("fix.go", 4), "walltime") {
		t.Error("malformed pragma must not suppress anything")
	}
}

func TestAllowUnknownRuleIsDiagnosed(t *testing.T) {
	_, _, msgs := build(t, `package p

//detlint:allow warptime — no such rule
var x = 1
`)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "unknown rule warptime") {
		t.Fatalf("want one unknown-rule diagnostic, got %v", msgs)
	}
}

func TestUnknownVerbIsDiagnosed(t *testing.T) {
	_, _, msgs := build(t, `package p

//detlint:ignore walltime — wrong verb
var x = 1
`)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "unknown detlint pragma") {
		t.Fatalf("want one unknown-verb diagnostic, got %v", msgs)
	}
}

func TestAllowWithNoRuleIsDiagnosed(t *testing.T) {
	_, _, msgs := build(t, `package p

//detlint:allow — reason but no rule
var x = 1
`)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "names no rule") {
		t.Fatalf("want one no-rule diagnostic, got %v", msgs)
	}
}

// TestOrdinaryCommentsIgnored pins that prose mentioning detlint is not
// parsed as a pragma.
func TestOrdinaryCommentsIgnored(t *testing.T) {
	_, _, msgs := build(t, `package p

// detlint: this spaced form is prose, not a pragma.
// See //detlint:allow usage in docs/determinism.md.
var x = 1
`)
	if len(msgs) != 0 {
		t.Fatalf("prose comments must not produce diagnostics, got %v", msgs)
	}
}
