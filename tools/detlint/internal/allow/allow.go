// Package allow implements the //detlint:allow pragma — the one
// sanctioned escape hatch from the determinism rules. A pragma names
// the rule(s) it suppresses and must carry a reason:
//
//	//detlint:allow walltime — Wall is telemetry, excluded from the contract
//
// (a double hyphen works in place of the em dash). The pragma covers
// the line it appears on and the line directly below it, so it works
// both as an end-of-line comment and as a standalone comment above the
// annotated statement. Malformed pragmas — unknown verb or rule,
// missing reason — are themselves diagnostics (rule "pragma"): an
// exemption that does not explain itself is no exemption.
package allow

import (
	"go/ast"
	"go/token"
	"strings"

	"biochip/tools/detlint/internal/analysis"
)

// Rules is the set of rule names a pragma may suppress.
var Rules = map[string]bool{
	"walltime":   true,
	"globalrand": true,
	"maporder":   true,
	"sinkpurity": true,
	"obspurity":  true,
	"detcompare": true,
}

// PragmaDoc anchors pragma diagnostics in the contract document.
const PragmaDoc = "docs/determinism.md#allow"

// pragma is one parsed //detlint:allow comment.
type pragma struct {
	pos    token.Pos
	rules  []string
	reason string
	errs   []string
}

// parse recognizes and decodes one detlint pragma comment; ok is false
// for comments that are not detlint pragmas at all.
func parse(c *ast.Comment) (p pragma, ok bool) {
	text, found := strings.CutPrefix(c.Text, "//detlint:")
	if !found {
		return p, false
	}
	p.pos = c.Slash
	verb, rest, _ := strings.Cut(text, " ")
	if verb != "allow" {
		p.errs = append(p.errs, "unknown detlint pragma //detlint:"+verb+" (only //detlint:allow exists)")
		return p, true
	}
	rest = strings.TrimSpace(rest)
	var ruleList string
	switch {
	case strings.Contains(rest, "—"):
		ruleList, p.reason, _ = strings.Cut(rest, "—")
	case strings.Contains(rest, "--"):
		ruleList, p.reason, _ = strings.Cut(rest, "--")
	default:
		ruleList = rest
	}
	p.reason = strings.TrimSpace(p.reason)
	for _, r := range strings.Split(ruleList, ",") {
		if r = strings.TrimSpace(r); r != "" {
			p.rules = append(p.rules, r)
			if !Rules[r] {
				p.errs = append(p.errs, "//detlint:allow names unknown rule "+r)
			}
		}
	}
	if len(p.rules) == 0 {
		p.errs = append(p.errs, "//detlint:allow names no rule")
	}
	if p.reason == "" {
		p.errs = append(p.errs, "//detlint:allow without a reason (write //detlint:allow <rule> — <why this site is exempt>)")
	}
	return p, true
}

// Index records, per file and line, which rules an allow pragma
// suppresses.
type Index struct {
	// byLine maps filename → line → suppressed rule set.
	byLine map[string]map[int]map[string]bool
}

// Build scans the files' comments and returns the suppression index
// along with the diagnostics for malformed pragmas.
func Build(fset *token.FileSet, files []*ast.File) (*Index, []analysis.Diagnostic) {
	ix := &Index{byLine: make(map[string]map[int]map[string]bool)}
	var diags []analysis.Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				p, ok := parse(c)
				if !ok {
					continue
				}
				for _, msg := range p.errs {
					diags = append(diags, analysis.Diagnostic{
						Pos: p.pos, Rule: "pragma", Message: msg + " (" + PragmaDoc + ")", Doc: PragmaDoc,
					})
				}
				if len(p.errs) > 0 {
					continue
				}
				position := fset.Position(p.pos)
				lines := ix.byLine[position.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					ix.byLine[position.Filename] = lines
				}
				for _, line := range []int{position.Line, position.Line + 1} {
					set := lines[line]
					if set == nil {
						set = make(map[string]bool)
						lines[line] = set
					}
					for _, r := range p.rules {
						set[r] = true
					}
				}
			}
		}
	}
	return ix, diags
}

// Allowed reports whether a diagnostic of the given rule at the given
// position is suppressed by a pragma.
func (ix *Index) Allowed(pos token.Position, rule string) bool {
	return ix.byLine[pos.Filename][pos.Line][rule]
}
