// Package parallel is the analysistest fake of biochip/internal/parallel:
// the loop-dispatch signatures the globalrand fixtures type-check
// against (serial implementations — fixtures never run).
package parallel

import "biochip/internal/rng"

// For mirrors the indexed parallel loop.
func For(workers, n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// ForChunks mirrors the chunked parallel loop.
func ForChunks(workers, n int, fn func(start, end int)) {
	if n > 0 {
		fn(0, n)
	}
}

// ForRNG mirrors the per-index-substream parallel loop.
func ForRNG(workers, n int, seed uint64, fn func(i int, src *rng.Source)) {
	for i := 0; i < n; i++ {
		fn(i, rng.Substream(seed, uint64(i)))
	}
}
