// Package maporder exercises the maporder analyzer: order-sensitive
// bodies under range-over-map are flagged; the collect-then-sort
// discipline, per-key writes and order-insensitive accumulations are
// legal.
package maporder

import (
	"encoding/json"
	"fmt"
	"sort"

	"biochip/internal/stream"
)

func badAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append inside a map range`
	}
	return out
}

// okCollectSort appends keys and sorts them afterwards — the sanctioned
// discipline.
func okCollectSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// okKeyed writes through the range key: one element per entry,
// order-independent.
func okKeyed(m map[int][]int) map[int][]int {
	out := make(map[int][]int, len(m))
	for k, v := range m {
		out[k] = append(out[k], v...)
	}
	return out
}

func badFloat(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `floating-point accumulation inside a map range`
	}
	return sum
}

// okInt accumulates integers — associative, order-independent.
func okInt(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func badCounter(m map[string]int, out []string) {
	i := 0
	for k := range m {
		out[i] = k // want `outer slice written through a counter`
		i++
	}
}

func badPrint(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `fmt\.Println invoked inside a map range`
	}
}

func badJSON(m map[string]int) {
	for k := range m {
		json.Marshal(k) // want `encoding/json\.Marshal invoked inside a map range`
	}
}

func badSink(m map[string]int, sink stream.Sink) {
	for k := range m {
		sink(stream.Event{Type: k}) // want `a stream sink invoked inside a map range`
	}
}

func badPublish(m map[string]int, r *stream.Ring) {
	for k := range m {
		r.Publish(stream.Event{Type: k}) // want `a stream sink invoked inside a map range`
	}
}

func badEventCall(m map[string]int, emit func(ev stream.Event, tag string)) {
	for k := range m {
		emit(stream.Event{}, k) // want `a stream\.Event-carrying call invoked inside a map range`
	}
}

// allowedAppend carries a justified pragma — no diagnostic.
func allowedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		//detlint:allow maporder — fixture: consumer treats the result as an unordered set
		out = append(out, k)
	}
	return out
}
