// Package grallow is the globalrand allow fixture: a justified pragma
// on the import and the call site suppresses both diagnostics.
package grallow

//detlint:allow globalrand — fixture: legacy compatibility shim, output never reaches a report
import "math/rand"

// Shim draws from the annotated legacy path — no diagnostic.
func Shim() int {
	//detlint:allow globalrand — fixture: legacy compatibility shim, output never reaches a report
	return rand.Int()
}
