// Package walltime exercises the walltime analyzer: clock reads are
// flagged, duration arithmetic is not, and an annotated wall-stamp site
// is suppressed.
package walltime

import "time"

func bad() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func badSince(t0 time.Time) float64 {
	return time.Since(t0).Seconds() // want `time\.Since reads the wall clock`
}

func badUntil(t0 time.Time) time.Duration {
	return time.Until(t0) // want `time\.Until reads the wall clock`
}

// okDuration uses time only for constants and arithmetic — legal.
func okDuration(d time.Duration) time.Duration {
	return d + 5*time.Second
}

// allowed is a sanctioned, annotated wall-stamp site: no diagnostic.
func allowed() time.Time {
	//detlint:allow walltime — fixture: sanctioned telemetry stamp excluded from the contract
	return time.Now()
}
