// Package rng is the analysistest fake of biochip/internal/rng: the
// Source type and constructors the globalrand fixtures type-check
// against.
package rng

// Source mirrors the real deterministic generator.
type Source struct{ s uint64 }

// New mirrors the seed constructor.
func New(seed uint64) *Source { return &Source{s: seed} }

// Substream mirrors the index-keyed derivation.
func Substream(seed, index uint64) *Source { return &Source{s: seed ^ index} }

// Float64 mirrors a draw.
func (r *Source) Float64() float64 { r.s++; return float64(r.s) }

// Uint64 mirrors a draw.
func (r *Source) Uint64() uint64 { r.s++; return r.s }
