// Package experiments is the analysistest stand-in for the one
// internal package exempt from the walltime rule: its purpose is
// measuring wall-clock speedups, so clock reads here are legal.
package experiments

import "time"

// Elapsed times a function — no diagnostic expected.
func Elapsed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
