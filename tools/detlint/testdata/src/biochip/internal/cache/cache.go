// Package cache is the analysistest fake of biochip/internal/cache:
// just enough of the key-derivation surface for the obspurity fixture
// to type-check against the real import path.
package cache

import "biochip/internal/assay"

// Key mirrors the content-address key.
type Key [32]byte

// ProfileMaterial mirrors one profile's key material.
type ProfileMaterial struct{ Name string }

// KeyOf mirrors whole-assay key derivation.
func KeyOf(pr assay.Program, seed uint64, profiles []ProfileMaterial) (Key, error) {
	return Key{}, nil
}

// ConfigJSON mirrors canonical config rendering.
func ConfigJSON(cfg any) ([]byte, error) { return nil, nil }
