// Package obs is the analysistest fake of biochip/internal/obs: just
// enough of the telemetry surface for the obspurity fixture to
// type-check against the real import path.
package obs

// Stamp mirrors the wall-clock stamp.
type Stamp float64

// Now mirrors the sanctioned wall read.
func Now() Stamp { return 0 }

// Since mirrors elapsed-seconds measurement.
func Since(s Stamp) float64 { return float64(s) }

// Attr mirrors one span attribute.
type Attr struct{ K, V string }

// Span mirrors one recorded span.
type Span struct {
	ID, Parent, Name string
	Start, End       float64
	Attrs            []Attr
}

// Trace mirrors the per-job span ring.
type Trace struct{ Spans []Span }

// NewTrace mirrors the constructor.
func NewTrace(job, parent string) *Trace { return &Trace{} }

// Registry mirrors the metrics registry.
type Registry struct{}

// NewRegistry mirrors the constructor.
func NewRegistry() *Registry { return &Registry{} }
