// Package stream is the analysistest fake of biochip/internal/stream:
// just enough of the payload types and publishing surface for the
// maporder and sinkpurity fixtures to type-check against the real
// import path.
package stream

// Event mirrors the real event shape.
type Event struct {
	Seq  uint64
	Type string
	T    float64
	Wall float64
	Job  *JobInfo
}

// JobInfo mirrors the envelope payload.
type JobInfo struct {
	ID      string
	Profile string
}

// OpInfo mirrors the op payload.
type OpInfo struct{ Index int }

// ScanChunk mirrors the scan payload.
type ScanChunk struct{ Scan int }

// PlanInfo mirrors the plan payload.
type PlanInfo struct{ Planner string }

// GapInfo mirrors the gap payload.
type GapInfo struct{ From, To uint64 }

// Detection mirrors one scan row.
type Detection struct{ SNR float64 }

// Sink mirrors the event consumer.
type Sink func(Event)

// Ring mirrors the publishing ring.
type Ring struct{}

// Publish mirrors the real publish entry point.
func (r *Ring) Publish(ev Event) uint64 { return ev.Seq }
