// Package assay is the analysistest fake of biochip/internal/assay:
// just enough of the program/report shapes for the obspurity fixture
// to type-check against the real import path.
package assay

// Program mirrors the assay program envelope.
type Program struct{ Name string }

// Report mirrors the deterministic report artifact.
type Report struct {
	Program  string
	Duration float64
	Steps    int
}
