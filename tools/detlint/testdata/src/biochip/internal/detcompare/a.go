// Package detcompare exercises the detcompare analyzer: equality on
// float-bearing structs/arrays and float-bearing map keys are flagged;
// integer composites and bare float comparisons are legal.
package detcompare

type vec struct{ X, Y float64 }

type cell struct{ Col, Row int }

type wrapped struct {
	v vec
	n int
}

func badEq(a, b vec) bool {
	return a == b // want `== compares float-bearing values`
}

func badNeq(a, b wrapped) bool {
	return a != b // want `!= compares float-bearing values`
}

func badArray(a, b [3]float64) bool {
	return a == b // want `== compares float-bearing values`
}

// okCell: integer composites hash and compare exactly — legal.
func okCell(a, b cell) bool { return a == b }

// okFloat: bare float comparison is ordinary numeric code — legal.
func okFloat(a, b float64) bool { return a == b }

var badKeyVar map[vec]int // want `map keyed on float-bearing type`

func badKeyMake() {
	_ = make(map[[2]float64]bool) // want `map keyed on float-bearing type`
}

// okKey: integer-keyed maps are exact — legal.
func okKey(m map[cell]int) int { return m[cell{}] }

// allowedEq carries a justified pragma — no diagnostic.
//
//detlint:allow detcompare — fixture: exact-bit comparison intended, inputs never NaN
func allowedEq(a, b vec) bool { return a == b }
