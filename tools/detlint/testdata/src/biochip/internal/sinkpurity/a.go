// Package sinkpurity exercises the sinkpurity analyzer: wall clocks,
// runtime/process state, channel receives and fleet identity are
// flagged inside event payload construction; profile names and
// simulated time are legal.
package sinkpurity

import (
	"os"
	"runtime"
	"time"

	"biochip/internal/stream"
)

type shard struct {
	id      string
	profile string
}

type worker struct{ workerID int }

func badWall(sink stream.Sink) {
	sink(stream.Event{T: float64(time.Now().UnixNano())}) // want `wall clock flows into an event payload`
}

func badWallAssign(ev *stream.Event) {
	ev.Wall = float64(time.Now().UnixNano()) // want `wall clock flows into an event payload`
}

func badRuntime() stream.Event {
	return stream.Event{Seq: uint64(runtime.NumGoroutine())} // want `runtime\.NumGoroutine in an event payload`
}

func badEnv() *stream.JobInfo {
	return &stream.JobInfo{ID: os.Getenv("HOSTNAME")} // want `os\.Getenv in an event payload`
}

func badChan(ch chan uint64, sink stream.Sink) {
	sink(stream.Event{Seq: <-ch}) // want `channel receive inside an event payload`
}

func badShardID(sh *shard, r *stream.Ring) {
	r.Publish(stream.Event{Job: &stream.JobInfo{ID: sh.id}}) // want `fleet identity shard\.id`
}

func badWorkerID(w *worker, r *stream.Ring) {
	r.Publish(stream.Event{Seq: uint64(w.workerID)}) // want `fleet identity worker\.workerID`
}

// okProfile: the executing profile is part of the contract — legal.
func okProfile(sh *shard, r *stream.Ring) {
	r.Publish(stream.Event{Job: &stream.JobInfo{Profile: sh.profile}})
}

// okSimulatedTime: deterministic values may flow freely — legal.
func okSimulatedTime(clock float64, sink stream.Sink) {
	sink(stream.Event{T: clock})
}

// allowedWall carries a justified pragma — no diagnostic.
func allowedWall(ev *stream.Event) {
	//detlint:allow sinkpurity — fixture: the ring's sanctioned Wall stamp
	ev.Wall = float64(time.Now().UnixNano())
}
