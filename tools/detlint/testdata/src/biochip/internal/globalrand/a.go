// Package globalrand exercises the globalrand analyzer: the math/rand
// import and its top-level draws are flagged, rand.New is flagged as a
// seed-tree escape, and a *rng.Source captured by a parallel loop body
// is flagged as goroutine-keyed. Index-keyed derivations are legal.
package globalrand

import (
	"math/rand" // want `import math/rand in determinism-scoped package`

	"biochip/internal/parallel"
	"biochip/internal/rng"
)

func badGlobal() float64 {
	return rand.Float64() // want `call to math/rand\.Float64`
}

func badNew() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want `rand\.New constructs a generator` `call to math/rand\.NewSource`
}

func badCaptured(seed uint64, out []float64) {
	src := rng.New(seed)
	parallel.For(0, len(out), func(i int) {
		out[i] = src.Float64() // want `captured by a parallel loop body`
	})
}

func badCapturedChunks(seed uint64, out []float64) {
	src := rng.New(seed)
	parallel.ForChunks(0, len(out), func(start, end int) {
		for i := start; i < end; i++ {
			out[i] = src.Float64() // want `captured by a parallel loop body`
		}
	})
}

// okSubstream derives an index-keyed stream per iteration — legal.
func okSubstream(seed uint64, out []float64) {
	parallel.For(0, len(out), func(i int) {
		out[i] = rng.Substream(seed, uint64(i)).Float64()
	})
}

// okDerivedInside declares its source inside the loop body — legal.
func okDerivedInside(seed uint64, out []float64) {
	parallel.For(0, len(out), func(i int) {
		src := rng.Substream(seed, uint64(i))
		out[i] = src.Float64()
	})
}

// okForRNG receives the per-index source from the dispatcher — legal.
func okForRNG(seed uint64, out []float64) {
	parallel.ForRNG(0, len(out), seed, func(i int, src *rng.Source) {
		out[i] = src.Float64()
	})
}

// okSerial uses a shared source outside any parallel dispatch — legal
// (serial draw order is deterministic).
func okSerial(seed uint64, out []float64) {
	src := rng.New(seed)
	for i := range out {
		out[i] = src.Float64()
	}
}
