// Package obspurity exercises the obspurity analyzer: anything sourced
// from internal/obs — its functions or values of its types — is
// flagged inside event payloads, assay.Report construction and cache
// key derivation; telemetry used out-of-band is legal.
package obspurity

import (
	"biochip/internal/assay"
	"biochip/internal/cache"
	"biochip/internal/obs"
	"biochip/internal/stream"
)

func badPayloadNow(sink stream.Sink) {
	sink(stream.Event{T: float64(obs.Now())}) // want `obs\.Now flows into an event payload`
}

func badPayloadStamp(ev *stream.Event, start obs.Stamp) {
	ev.Wall = float64(start) // want `start \(obs\.Stamp\) flows into an event payload`
}

func badPublishTrace(r *stream.Ring, tr *obs.Trace) {
	r.Publish(stream.Event{Seq: uint64(len(tr.Spans))}) // want `tr \(obs\.Trace\) flows into an event payload`
}

func badReportLit(t0 obs.Stamp) assay.Report {
	return assay.Report{Duration: float64(t0)} // want `t0 \(obs\.Stamp\) flows into an assay report`
}

func badReportAssign(rep *assay.Report) {
	rep.Duration = obs.Since(0) // want `obs\.Since flows into an assay report`
}

func badCacheKey(pr assay.Program, seed obs.Stamp) {
	cache.KeyOf(pr, uint64(seed), nil) // want `seed \(obs\.Stamp\) flows into cache key material`
}

func badConfigJSON(tr *obs.Trace) {
	cache.ConfigJSON(tr) // want `tr \(obs\.Trace\) flows into cache key material`
}

// okOutOfBand: telemetry measured and recorded outside the guarded
// contexts — legal.
func okOutOfBand(start obs.Stamp) float64 {
	return obs.Since(start)
}

// okPayloadClean: deterministic values flow into payloads freely.
func okPayloadClean(clock float64, sink stream.Sink) {
	sink(stream.Event{T: clock})
}

// okReportClean: report fields from deterministic inputs — legal.
func okReportClean(steps int) assay.Report {
	return assay.Report{Steps: steps}
}

// allowedPayload carries a justified pragma — no diagnostic.
func allowedPayload(ev *stream.Event, start obs.Stamp) {
	//detlint:allow obspurity — fixture: sanctioned wall stamp
	ev.Wall = float64(start)
}
