// Command doclint fails the build when any Go package in the module is
// missing a package comment, keeping `go doc biochip/internal/<pkg>`
// useful for every package, and golden-checks the committed example
// documents: every docs/examples/*.json must decode against its live
// codec (fleet*.json as a service fleet spec, members*.json as a
// federation members spec, listing*.json as a job listing page,
// stats-federated*.json as a gateway stats snapshot, any other
// stats*.json as a service stats snapshot, everything else as an assay
// program) with object keys in canonical struct-tag order, and
// every docs/examples/*.ndjson must round-trip line by line through the
// stream.Event codec (decode with unknown fields rejected, re-encode,
// compare bytes), so the documentation examples cannot drift from the
// wire formats. Observability examples are checked too: metrics*.txt
// must lint clean under obs.LintExposition and trace*.json must decode
// as an obs.TraceDoc. CI runs it alongside gofmt/vet; run it locally
// with:
//
//	go run ./tools/doclint .
//
// The -promlint mode validates one Prometheus text exposition — a file
// or a live /v1/metrics URL (fetched with retries, so CI can point it
// at a daemon that is still starting):
//
//	go run ./tools/doclint -promlint http://localhost:8465/v1/metrics
//
// A package comment is the doc comment attached to the package clause
// of at least one non-test file (Go associates it with the clause it
// immediately precedes). Vendored, hidden and testdata directories are
// skipped.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"biochip/internal/assay"
	"biochip/internal/federation"
	"biochip/internal/obs"
	"biochip/internal/service"
	"biochip/internal/stream"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-promlint" {
		if len(os.Args) != 3 {
			fmt.Fprintln(os.Stderr, "usage: doclint -promlint FILE|URL")
			os.Exit(2)
		}
		os.Exit(promlint(os.Args[2]))
	}
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	bad, err := lint(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(2)
	}
	if len(bad) > 0 {
		fmt.Fprintln(os.Stderr, "doclint: packages missing a package comment:")
		for _, dir := range bad {
			fmt.Fprintln(os.Stderr, "  "+dir)
		}
		os.Exit(1)
	}
	if errs := lintExamples(filepath.Join(root, "docs", "examples")); len(errs) > 0 {
		fmt.Fprintln(os.Stderr, "doclint: example documents that no longer decode:")
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "  "+e)
		}
		os.Exit(1)
	}
}

// promlint validates one Prometheus text exposition and prints every
// problem obs.LintExposition finds. URLs are fetched with a short retry
// loop so CI can scrape a daemon immediately after launching it.
func promlint(target string) int {
	var body []byte
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		var err error
		for attempt := 0; attempt < 20; attempt++ {
			if attempt > 0 {
				time.Sleep(250 * time.Millisecond)
			}
			var resp *http.Response
			if resp, err = http.Get(target); err != nil {
				continue
			}
			body, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			if err == nil && resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("%s: %s", target, resp.Status)
			}
			if err == nil {
				break
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint: -promlint:", err)
			return 2
		}
	} else {
		var err error
		if body, err = os.ReadFile(target); err != nil {
			fmt.Fprintln(os.Stderr, "doclint: -promlint:", err)
			return 2
		}
	}
	if probs := obs.LintExposition(bytes.NewReader(body)); len(probs) > 0 {
		fmt.Fprintln(os.Stderr, "doclint: exposition problems in "+target+":")
		for _, p := range probs {
			fmt.Fprintln(os.Stderr, "  "+p)
		}
		return 1
	}
	return 0
}

// lintExamples decodes every committed example against its codec:
// fleet*.json as service fleet specs, members*.json as federation
// members specs, listing*.json as job listing pages,
// stats-federated*.json as gateway stats snapshots, any other
// stats*.json as service stats snapshots, metrics*.txt as Prometheus
// expositions, trace*.json as trace documents, everything else as
// assay programs. A missing examples directory is fine (nothing to
// check).
func lintExamples(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return []string{dir + ": " + err.Error()}
	}
	var bad []string
	for _, e := range entries {
		name := e.Name()
		// .ndjson must be tested before the .json filter: the suffix
		// check would reject it and silently skip event-stream examples.
		ndjson := strings.HasSuffix(name, ".ndjson")
		exposition := strings.HasPrefix(name, "metrics") && strings.HasSuffix(name, ".txt")
		if e.IsDir() || (!ndjson && !exposition && !strings.HasSuffix(name, ".json")) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			bad = append(bad, name+": "+err.Error())
			continue
		}
		if ndjson {
			bad = append(bad, lintEventStream(name, data)...)
			continue
		}
		if exposition {
			for _, p := range obs.LintExposition(bytes.NewReader(data)) {
				bad = append(bad, name+": "+p)
			}
			continue
		}
		if strings.HasPrefix(name, "trace") {
			dec := json.NewDecoder(bytes.NewReader(data))
			dec.DisallowUnknownFields()
			var doc obs.TraceDoc
			if err := dec.Decode(&doc); err != nil {
				bad = append(bad, name+": "+err.Error())
				continue
			}
			bad = append(bad, lintKeyOrder(name, data, doc)...)
			continue
		}
		if strings.HasPrefix(name, "fleet") {
			spec, err := service.ParseFleetSpec(data)
			if err != nil {
				bad = append(bad, name+": "+err.Error())
				continue
			}
			bad = append(bad, lintKeyOrder(name, data, spec)...)
			continue
		}
		if strings.HasPrefix(name, "members") {
			spec, err := federation.ParseMembersSpec(data)
			if err != nil {
				bad = append(bad, name+": "+err.Error())
				continue
			}
			bad = append(bad, lintKeyOrder(name, data, spec)...)
			continue
		}
		// The federated shape must be tested before the generic stats
		// prefix, which would otherwise claim (and fail) it.
		if strings.HasPrefix(name, "stats-federated") {
			var st federation.Stats
			if err := json.Unmarshal(data, &st); err != nil {
				bad = append(bad, name+": "+err.Error())
				continue
			}
			bad = append(bad, lintKeyOrder(name, data, st)...)
			continue
		}
		if strings.HasPrefix(name, "stats") {
			var st service.Stats
			if err := json.Unmarshal(data, &st); err != nil {
				bad = append(bad, name+": "+err.Error())
				continue
			}
			bad = append(bad, lintKeyOrder(name, data, st)...)
			continue
		}
		if strings.HasPrefix(name, "listing") {
			var page service.ListPage
			if err := json.Unmarshal(data, &page); err != nil {
				bad = append(bad, name+": "+err.Error())
				continue
			}
			bad = append(bad, lintKeyOrder(name, data, page)...)
			continue
		}
		var pr assay.Program
		if err := json.Unmarshal(data, &pr); err != nil {
			bad = append(bad, name+": "+err.Error())
			continue
		}
		if err := pr.CheckOps(); err != nil {
			bad = append(bad, name+": "+err.Error())
		}
		bad = append(bad, lintKeyOrder(name, data, pr)...)
	}
	return bad
}

// lintKeyOrder re-marshals the decoded value (whose field order is the
// codec's struct-tag order) and checks that every object in the example
// lists its keys in that canonical relative order, so examples read the
// way the service actually emits them.
func lintKeyOrder(name string, raw []byte, decoded any) []string {
	canon, err := json.Marshal(decoded)
	if err != nil {
		return []string{name + ": " + err.Error()}
	}
	rawTree, err := parseOrdered(raw)
	if err != nil {
		return []string{name + ": " + err.Error()}
	}
	canonTree, err := parseOrdered(canon)
	if err != nil {
		return []string{name + ": " + err.Error()}
	}
	var bad []string
	compareKeyOrder(name, rawTree, canonTree, &bad)
	return bad
}

// jnode is a JSON value with object key order preserved. Scalars carry
// neither fields nor elems.
type jnode struct {
	keys   []string // object key order as written
	fields map[string]*jnode
	elems  []*jnode
}

// parseOrdered parses one JSON document keeping object key order, which
// encoding/json's map-based Unmarshal discards.
func parseOrdered(data []byte) (*jnode, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	return parseValue(dec)
}

func parseValue(dec *json.Decoder) (*jnode, error) {
	tok, err := dec.Token()
	if err != nil {
		return nil, err
	}
	delim, ok := tok.(json.Delim)
	if !ok {
		return &jnode{}, nil // scalar
	}
	n := &jnode{}
	switch delim {
	case '{':
		n.fields = make(map[string]*jnode)
		for dec.More() {
			kt, err := dec.Token()
			if err != nil {
				return nil, err
			}
			k := kt.(string)
			v, err := parseValue(dec)
			if err != nil {
				return nil, err
			}
			n.keys = append(n.keys, k)
			n.fields[k] = v
		}
	case '[':
		for dec.More() {
			v, err := parseValue(dec)
			if err != nil {
				return nil, err
			}
			n.elems = append(n.elems, v)
		}
	}
	// Consume the closing delimiter.
	if _, err := dec.Token(); err != nil {
		return nil, err
	}
	return n, nil
}

// compareKeyOrder walks raw and canon in parallel. At each object it
// restricts both key lists to the keys present in both trees (omitempty
// fields may be absent on either side) and requires the raw order to
// match the canonical relative order, then recurses into shared keys
// and paired array elements.
func compareKeyOrder(path string, raw, canon *jnode, bad *[]string) {
	if raw == nil || canon == nil {
		return
	}
	if raw.fields != nil && canon.fields != nil {
		rawOrder := sharedKeys(raw.keys, canon.fields)
		canonOrder := sharedKeys(canon.keys, raw.fields)
		for i := range rawOrder {
			if rawOrder[i] != canonOrder[i] {
				*bad = append(*bad, fmt.Sprintf("%s: key %q out of canonical order (codec writes %q here)",
					path, rawOrder[i], canonOrder[i]))
				break
			}
		}
		for _, k := range rawOrder {
			compareKeyOrder(path+"."+k, raw.fields[k], canon.fields[k], bad)
		}
		return
	}
	for i := 0; i < len(raw.elems) && i < len(canon.elems); i++ {
		compareKeyOrder(fmt.Sprintf("%s[%d]", path, i), raw.elems[i], canon.elems[i], bad)
	}
}

// sharedKeys filters order to the keys that also exist in other,
// preserving sequence.
func sharedKeys(order []string, other map[string]*jnode) []string {
	out := make([]string, 0, len(order))
	for _, k := range order {
		if _, ok := other[k]; ok {
			out = append(out, k)
		}
	}
	return out
}

// lintEventStream round-trips one NDJSON event-stream example against
// the live stream.Event codec: each line must decode with no unknown
// fields and re-encode to the identical bytes, so the example pins both
// the field set and the wire field order.
func lintEventStream(name string, data []byte) []string {
	var bad []string
	for i, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		var ev stream.Event
		if err := dec.Decode(&ev); err != nil {
			bad = append(bad, fmt.Sprintf("%s:%d: %v", name, i+1, err))
			continue
		}
		out, err := json.Marshal(ev)
		if err != nil {
			bad = append(bad, fmt.Sprintf("%s:%d: %v", name, i+1, err))
			continue
		}
		if !bytes.Equal(out, line) {
			bad = append(bad, fmt.Sprintf("%s:%d: does not round-trip:\n    file:  %s\n    codec: %s",
				name, i+1, line, out))
		}
	}
	return bad
}

// lint walks root and returns the directories whose package lacks a
// package comment on every non-test file.
func lint(root string) ([]string, error) {
	var bad []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "vendor" || name == "testdata" || name == "related") {
			return filepath.SkipDir
		}
		ok, hasGo, err := dirDocumented(path)
		if err != nil {
			return err
		}
		if hasGo && !ok {
			bad = append(bad, path)
		}
		return nil
	})
	return bad, err
}

// dirDocumented parses the non-test Go files of one directory and
// reports whether any carries a package doc comment.
func dirDocumented(dir string) (documented, hasGo bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		hasGo = true
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return false, true, err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, true, nil
		}
	}
	return false, hasGo, nil
}
