package main

import (
	"encoding/json"
	"strings"
	"testing"
)

type orderInner struct {
	Col int `json:"col"`
	Row int `json:"row"`
}

type orderOuter struct {
	Name  string       `json:"name"`
	Seed  int64        `json:"seed,omitempty"`
	Cells []orderInner `json:"cells,omitempty"`
}

func decodeOuter(t *testing.T, raw string) orderOuter {
	t.Helper()
	var v orderOuter
	if err := json.Unmarshal([]byte(raw), &v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestKeyOrderCanonicalAccepted(t *testing.T) {
	raw := `{"name":"a","seed":7,"cells":[{"col":1,"row":2}]}`
	if bad := lintKeyOrder("ex.json", []byte(raw), decodeOuter(t, raw)); len(bad) != 0 {
		t.Fatalf("canonical order rejected: %v", bad)
	}
}

// TestKeyOrderOmittedFieldsAccepted: omitempty fields absent from the
// example must not shift the relative-order comparison.
func TestKeyOrderOmittedFieldsAccepted(t *testing.T) {
	raw := `{"name":"a","cells":[{"col":1,"row":2}]}`
	if bad := lintKeyOrder("ex.json", []byte(raw), decodeOuter(t, raw)); len(bad) != 0 {
		t.Fatalf("order with omitted fields rejected: %v", bad)
	}
}

func TestKeyOrderTopLevelSwapRejected(t *testing.T) {
	raw := `{"seed":7,"name":"a"}`
	bad := lintKeyOrder("ex.json", []byte(raw), decodeOuter(t, raw))
	if len(bad) != 1 || !strings.Contains(bad[0], `key "seed" out of canonical order`) {
		t.Fatalf("want one top-level order error, got %v", bad)
	}
}

// TestKeyOrderNestedSwapRejected pins that the walk descends through
// arrays into nested objects and reports the path.
func TestKeyOrderNestedSwapRejected(t *testing.T) {
	raw := `{"name":"a","cells":[{"col":1,"row":2},{"row":4,"col":3}]}`
	bad := lintKeyOrder("ex.json", []byte(raw), decodeOuter(t, raw))
	if len(bad) != 1 || !strings.Contains(bad[0], "ex.json.cells[1]") ||
		!strings.Contains(bad[0], `key "row" out of canonical order`) {
		t.Fatalf("want one nested order error with path, got %v", bad)
	}
}

// TestCommittedExamplesLint is the meta-check: the examples shipped in
// docs/examples must pass the full example linter.
func TestCommittedExamplesLint(t *testing.T) {
	if bad := lintExamples("../../docs/examples"); len(bad) != 0 {
		t.Fatalf("committed examples fail doclint: %v", bad)
	}
}
